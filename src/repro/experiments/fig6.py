"""Fig. 6 — service performance of the six policies (§VI-C).

The paper sweeps six arrival rates (10, 20, 50, 100, 200, 500 req/s)
and reports, per policy, (a) the pooled 99th-percentile component
latency and (b) the mean overall service latency.  The headline:
averaged over the sweep, PCS cuts the component tail by 67.05 % and the
mean overall latency by 64.16 % *relative to the redundancy/reissue
techniques* (RED-3/RED-5/RI-90/RI-99).

This driver reruns exactly that sweep on the simulated cluster and
computes the same headline aggregation.  The scale knobs default to a
laptop-sized but faithful configuration; ``Fig6Config(paper_scale=True)``
applies the *scenario's own* full-scale preset
(:attr:`~repro.scenarios.spec.ScenarioSpec.paper_scale` — the paper's
30-node / 100-searching-VM setup for ``nutch-search``, per-scenario
sizes elsewhere) and raises a named
:class:`~repro.errors.ConfigurationError` for scenarios that define no
preset, instead of silently mis-sizing them with Nutch constants.

Execution routes through :mod:`repro.sim.sweep`: every (policy, rate)
cell is one independent sweep point, so ``workers=N`` fans the grid out
over processes (bit-identical to the serial path) and ``cache_dir``
memoizes completed cells so an interrupted sweep resumes for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.baselines.policies import (
    BasicPolicy,
    PCSPolicy,
    Policy,
    standard_policies,
)
from repro.errors import ExperimentError
from repro.experiments.report import render_bars, render_table
from repro.scenarios import get_scenario
from repro.scheduler.pcs import SchedulerConfig
from repro.scheduler.threshold import AdaptiveThreshold
from repro.service.nutch import NutchConfig
from repro.sim.aggregate import AggregateConfig, SweepSummary
from repro.sim.runner import PolicyResult, RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepCache, SweepSpec
from repro.units import ms
from repro.workloads.generator import GeneratorConfig

__all__ = [
    "PAPER_FIG6",
    "paper_pcs_policy",
    "Fig6Config",
    "Fig6Result",
    "run_fig6",
    "run_quick_comparison",
]

#: The paper's headline reductions (PCS vs redundancy/reissue, averaged).
PAPER_FIG6 = {"tail_reduction": 67.05, "mean_reduction": 64.16}

#: The paper's arrival-rate sweep (req/s).
PAPER_ARRIVAL_RATES = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


def paper_pcs_policy(max_migrations: int = 25) -> PCSPolicy:
    """The PCS configuration used by the Fig. 6 reproduction.

    The paper pins ε to 5 ms = 5 % of its testbed's accepted 100 ms
    overall latency; our simulated service is faster, so we apply the
    same 5 %-of-accepted-latency *rule* adaptively (§VI-C explicitly
    notes the adaptive variant as a possible refinement).
    """
    return PCSPolicy(
        scheduler_config=SchedulerConfig(
            threshold=AdaptiveThreshold(fraction=0.03, min_epsilon_s=ms(0.3)),
            max_migrations=max_migrations,
        )
    )


@dataclass(frozen=True)
class Fig6Config:
    """Scale and sweep parameters for the Fig. 6 reproduction.

    ``paper_scale=True`` applies the scenario's registered full-scale
    preset (``ScenarioSpec.paper_scale``) to every field the caller
    left at its default — explicit arguments always win — and fails
    loudly for scenarios without one.
    """

    arrival_rates: Tuple[float, ...] = PAPER_ARRIVAL_RATES
    #: ``None`` resolves to the scenario's own default cluster size
    #: (the paper's 30 nodes for ``nutch-search``).
    n_nodes: Optional[int] = None
    interval_s: float = 30.0
    n_intervals: int = 8
    warmup_intervals: int = 2
    seed: int = 7
    #: Which registered workload scenario the sweep runs on
    #: (:mod:`repro.scenarios`); the paper's figure is ``nutch-search``.
    scenario: str = "nutch-search"
    #: Shape multiplier for scenario builders that define scaled shapes
    #: (the ``nutch-search`` shape comes from :attr:`nutch` instead).
    #: ``None`` (the default) resolves to 1.0 — the sentinel lets a
    #: paper-scale preset distinguish "left unset" from an explicitly
    #: passed 1.0, so explicit arguments always win.
    scale: Optional[float] = None
    #: Shape of the ``nutch-search`` service; ``None`` resolves to the
    #: stock :class:`NutchConfig` (same sentinel rationale as `scale`).
    nutch: Optional[NutchConfig] = None
    #: ``None`` resolves to the scenario's workload/interference
    #: profile, so every driver runs a scenario in the same environment
    #: as the sweep CLI.
    generator: Optional[GeneratorConfig] = None
    policies: Tuple[Policy, ...] = ()
    #: Seeds to repeat every (policy, rate) cell under; defaults to
    #: ``(seed,)``.  With several seeds the driver reports mean ± CI
    #: per cell through :mod:`repro.sim.aggregate`.
    seeds: Tuple[int, ...] = ()
    #: Apply the scenario's full-scale preset (see the class docstring).
    paper_scale: bool = False
    #: Arrival-trace profile shaping per-interval rates
    #: (:func:`~repro.workloads.traces.arrival_profile_names`); the
    #: paper's open-loop stationary stream is the default.
    trace_profile: str = "stationary"
    #: Request-class mix re-weighting, ``((name, weight), ...)``; `None``
    #: runs the scenario's declared mix (validated by the runner).
    class_mix: Optional[Tuple[Tuple[str, float], ...]] = None
    #: Chunked interval simulation (``RunnerConfig.chunk_requests``):
    #: ``None`` keeps the monolithic exact path.
    chunk_requests: Optional[int] = None
    #: Latency summary mode forwarded to the runner (``"auto"`` /
    #: ``"exact"`` / ``"streaming"``).
    summary_mode: str = "auto"

    def __post_init__(self) -> None:
        if not self.arrival_rates:
            raise ExperimentError("need at least one arrival rate")
        if any(r <= 0 for r in self.arrival_rates):
            raise ExperimentError("arrival rates must be positive")
        spec = get_scenario(self.scenario)  # fail fast on unknown names
        if self.paper_scale:
            self._apply_paper_preset(spec)
        if self.n_nodes is None:
            object.__setattr__(
                self, "n_nodes", int(spec.runner_defaults.get("n_nodes", 30))
            )
        if self.generator is None:
            object.__setattr__(self, "generator", spec.generator)
        if not self.policies:
            object.__setattr__(
                self, "policies", tuple(standard_policies()[:-1]) + (paper_pcs_policy(),)
            )
        if self.scale is None:
            object.__setattr__(self, "scale", 1.0)
        if self.nutch is None:
            object.__setattr__(self, "nutch", NutchConfig())
        if not self.seeds:
            object.__setattr__(self, "seeds", (self.seed,))
        if len(set(self.seeds)) != len(self.seeds):
            raise ExperimentError(f"duplicate seeds: {self.seeds}")

    #: The fields a scenario's paper-scale preset may set — exactly the
    #: ones whose ``None`` default is a sentinel, so "left unset" is
    #: detectable and an explicitly passed value is never overridden.
    PRESETTABLE_FIELDS = ("n_nodes", "scale", "nutch")

    def _apply_paper_preset(self, spec) -> None:
        """Apply ``spec.paper_scale`` to fields still at their defaults.

        Preset keys are restricted to :attr:`PRESETTABLE_FIELDS` —
        fields with ``None`` sentinels — so an explicitly passed value,
        even one equal to the resolved default, is never overridden
        (any other key is rejected rather than applied under
        unsound value-equality detection).  Presets are moved into the
        scenario registry precisely so that ``paper_scale=True`` can
        never silently size scenario B with scenario A's constants: an
        empty preset (unknown combination) raises a named
        :class:`~repro.errors.ConfigurationError`.
        """
        from repro.errors import ConfigurationError

        preset = dict(spec.paper_scale)
        if not preset:
            raise ConfigurationError(
                f"scenario {self.scenario!r} defines no paper-scale preset "
                "(ScenarioSpec.paper_scale); register one or run it at "
                "quick scale"
            )
        for key, value in preset.items():
            if key not in self.PRESETTABLE_FIELDS:
                raise ConfigurationError(
                    f"scenario {self.scenario!r} paper-scale preset key "
                    f"{key!r} is not presettable (allowed: "
                    f"{', '.join(self.PRESETTABLE_FIELDS)})"
                )
            if getattr(self, key) is None:
                object.__setattr__(self, key, value)

    def runner_config(self, arrival_rate: float) -> RunnerConfig:
        """Runner configuration for one sweep point."""
        return RunnerConfig(
            n_nodes=self.n_nodes,
            arrival_rate=arrival_rate,
            interval_s=self.interval_s,
            n_intervals=self.n_intervals,
            warmup_intervals=self.warmup_intervals,
            seed=self.seed,
            scenario=self.scenario,
            scale=self.scale,
            nutch=self.nutch,
            generator=self.generator,
            interference_noise=get_scenario(self.scenario).interference_noise,
            trace_profile=self.trace_profile,
            class_mix=self.class_mix,
            chunk_requests=self.chunk_requests,
            summary_mode=self.summary_mode,
        )

    def sweep_spec(self) -> SweepSpec:
        """The policies × rates × seeds grid as a :class:`SweepSpec`."""
        return SweepSpec(
            base=self.runner_config(self.arrival_rates[0]),
            policies=tuple(self.policies),
            arrival_rates=tuple(self.arrival_rates),
            seeds=tuple(self.seeds),
        )


@dataclass
class Fig6Result:
    """The full sweep: one PolicyResult per (rate, policy).

    ``results`` is one seed's slice (``config.seeds[0]``) — the shape
    the per-rate panels and the analysis helpers consume.  ``summary``
    is the seed-level reduction over *all* seeds
    (:class:`~repro.sim.aggregate.SweepSummary`); every headline number
    reads from it, so single- and multi-seed runs share one code path.
    """

    results: Dict[float, Dict[str, PolicyResult]]
    config: Fig6Config
    wall_time_s: float = 0.0
    summary: Optional[SweepSummary] = None

    def seed_summary(self) -> SweepSummary:
        """The seed-level aggregate (built lazily for hand-made results)."""
        if self.summary is None:
            self.summary = SweepSummary.from_grouped(
                {
                    (name, rate): {self.config.seeds[0]: result}
                    for rate, per_policy in self.results.items()
                    for name, result in per_policy.items()
                }
            )
        return self.summary

    def policies(self) -> List[str]:
        """Policy names in legend order."""
        first = next(iter(self.results.values()))
        return list(first)

    def _mitigation_baselines(self) -> List[str]:
        baselines = [p for p in self.policies() if p.startswith(("RED", "RI"))]
        if not baselines or "PCS" not in self.policies():
            raise ExperimentError("sweep must include PCS and RED/RI policies")
        return baselines

    def headline_reduction(self) -> Dict[str, float]:
        """The paper's headline aggregation (§VI-C "Results").

        "PCS achieves 67.05 % reduction in the 99th component latency
        and 64.16 % reduction in the overall service latency when
        comparing to the request redundancy and reissue techniques" —
        computed as the reduction of the *sweep-averaged* latency:
        ``1 − mean_over_rates(PCS) / mean_over_rates_and_techniques(RED/RI)``.
        (Averaging latencies before taking the ratio is the only
        reading under which a single percentage can summarise a sweep
        whose heavy-load points differ by orders of magnitude.)

        Per-cell values are the seed-means from the shared
        :mod:`repro.sim.aggregate` reduction; with one seed they are
        exactly the single run's numbers.
        """
        baselines = self._mitigation_baselines()
        summary = self.seed_summary()
        rates = sorted(self.results)
        pcs_tail = np.mean(
            [summary.seed_mean("PCS", r, "component_latency.p99") for r in rates]
        )
        pcs_mean = np.mean(
            [summary.seed_mean("PCS", r, "overall_latency.mean") for r in rates]
        )
        other_tail = np.mean(
            [
                summary.seed_mean(b, r, "component_latency.p99")
                for r in rates
                for b in baselines
            ]
        )
        other_mean = np.mean(
            [
                summary.seed_mean(b, r, "overall_latency.mean")
                for r in rates
                for b in baselines
            ]
        )
        return {
            "tail": float(100.0 * (1.0 - pcs_tail / other_tail)),
            "mean": float(100.0 * (1.0 - pcs_mean / other_mean)),
        }

    def reduction_vs_mitigation_techniques(self) -> Dict[str, float]:
        """Alternative aggregation: mean of per-(rate, technique)
        percentage reductions.

        More sensitive to light-load points (where redundancy's
        min-of-k genuinely shines and a negative 'reduction' of
        several hundred percent is possible), so it understates PCS
        relative to :meth:`headline_reduction`; reported alongside for
        transparency.
        """
        baselines = self._mitigation_baselines()
        summary = self.seed_summary()
        tail_reductions, mean_reductions = [], []
        for rate in self.results:
            pcs_tail = summary.seed_mean("PCS", rate, "component_latency.p99")
            pcs_mean = summary.seed_mean("PCS", rate, "overall_latency.mean")
            for name in baselines:
                tail_reductions.append(
                    100.0
                    * (
                        1.0
                        - pcs_tail
                        / summary.seed_mean(name, rate, "component_latency.p99")
                    )
                )
                mean_reductions.append(
                    100.0
                    * (
                        1.0
                        - pcs_mean
                        / summary.seed_mean(name, rate, "overall_latency.mean")
                    )
                )
        return {
            "tail": float(np.mean(tail_reductions)),
            "mean": float(np.mean(mean_reductions)),
        }

    def render(self) -> str:
        """The six panels as tables plus the headline comparison."""
        blocks = []
        for rate in sorted(self.results):
            per_policy = self.results[rate]
            rows = [
                [
                    name,
                    f"{r.component_p99_s * 1e3:.1f}",
                    f"{r.overall_mean_s * 1e3:.1f}",
                    r.n_migrations,
                ]
                for name, r in per_policy.items()
            ]
            blocks.append(
                render_table(
                    ["policy", "component p99 (ms)", "overall mean (ms)", "migrations"],
                    rows,
                    title=f"Fig. 6 @ {rate:g} req/s",
                )
            )
            blocks.append(
                render_bars(
                    {n: r.component_p99_s * 1e3 for n, r in per_policy.items()},
                    title=f"component p99 (ms, log bars) @ {rate:g} req/s",
                    unit="ms",
                    log=True,
                )
            )
            # Mixed-class runs: one per-class panel per rate, so the
            # class-conditional tails are visible next to the pooled
            # numbers (class-free runs render exactly as before).
            class_rows = [
                [
                    name,
                    cls,
                    s.n,
                    f"{s.mean * 1e3:.1f}",
                    f"{s.p99 * 1e3:.1f}",
                ]
                for name, r in per_policy.items()
                if r.per_class
                for cls, s in sorted(r.per_class.items())
            ]
            if class_rows:
                blocks.append(
                    render_table(
                        ["policy", "class", "n", "mean (ms)", "p99 (ms)"],
                        class_rows,
                        title=f"per-class overall latency @ {rate:g} req/s",
                    )
                )
        blocks.append(self.seed_summary().render_table())
        has_mitigation = any(
            p.startswith(("RED", "RI")) for p in self.policies()
        )
        if has_mitigation and "PCS" in self.policies():
            head = self.headline_reduction()
            pairs = self.reduction_vs_mitigation_techniques()
            blocks.append(
                "PCS vs redundancy/reissue techniques, sweep-averaged latency: "
                f"tail -{head['tail']:.1f}% (paper -{PAPER_FIG6['tail_reduction']:.1f}%), "
                f"mean -{head['mean']:.1f}% (paper -{PAPER_FIG6['mean_reduction']:.1f}%)\n"
                "per-(rate, technique) mean of reductions (alternative aggregation): "
                f"tail {pairs['tail']:+.1f}%, mean {pairs['mean']:+.1f}%"
            )
        return "\n\n".join(blocks)


def run_fig6(
    config: Fig6Config | None = None,
    verbose: bool = False,
    workers: int = 1,
    cache_dir: Union[str, SweepCache, None] = None,
    backend=None,
    chunk_size=None,
) -> Fig6Result:
    """Run the whole Fig. 6 sweep (shared seeds across policies).

    ``workers`` fans the (policy, rate) grid out over an execution
    backend via :class:`~repro.sim.sweep.ParallelSweepRunner`
    (``backend``/``chunk_size`` select how — threads for small pending
    sets by default, spawn processes for big grids); results are
    bit-identical to ``workers=1``.  ``cache_dir`` memoizes completed
    cells on disk so an interrupted or repeated sweep resumes instead
    of recomputing.
    """
    cfg = config or Fig6Config()
    sweep = ParallelSweepRunner(
        cfg.sweep_spec(),
        workers=workers,
        cache=cache_dir,
        progress=(lambda p: print(p.render())) if verbose else None,
        backend=backend,
        chunk_size=chunk_size,
    )
    outcome = sweep.run()
    return Fig6Result(
        results=outcome.by_rate(seed=cfg.seeds[0]),
        config=cfg,
        wall_time_s=outcome.wall_time_s,
        summary=outcome.summary(AggregateConfig()),
    )


def run_quick_comparison(
    arrival_rate: float = 100.0,
    seed: int = 0,
    n_intervals: int = 6,
    scenario: str = "nutch-search",
    scale: float = 1.0,
    trace_profile: str = "stationary",
    class_mix: Optional[Tuple[Tuple[str, float], ...]] = None,
    chunk_requests: Optional[int] = None,
    summary_mode: str = "auto",
) -> Fig6Result:
    """A minutes-scale Basic-vs-PCS taste of Fig. 6 (see quickstart)."""
    cfg = Fig6Config(
        arrival_rates=(arrival_rate,),
        n_nodes=12,
        n_intervals=n_intervals,
        warmup_intervals=1,
        seed=seed,
        scenario=scenario,
        scale=scale,
        nutch=NutchConfig(n_search_groups=8, replicas_per_group=4),
        policies=(BasicPolicy(), paper_pcs_policy()),
        trace_profile=trace_profile,
        class_mix=class_mix,
        chunk_requests=chunk_requests,
        summary_mode=summary_mode,
    )
    return run_fig6(cfg)
