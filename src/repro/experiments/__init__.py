"""Experiment drivers regenerating the paper's evaluation artifacts.

- :mod:`repro.experiments.fig5` — prediction accuracy of the Eq. 1
  performance model (paper Fig. 5).
- :mod:`repro.experiments.fig6` — the six-policy latency comparison
  over the arrival-rate sweep (paper Fig. 6(a)–(f)) plus the headline
  reduction percentages.
- :mod:`repro.experiments.fig7` — scheduler scalability up to 640
  components × 128 nodes (paper Fig. 7).
- :mod:`repro.experiments.ablations` — design-choice ablations
  (threshold, matrix update mode, predictor fidelity, hierarchy,
  monitor noise) that the paper mentions but does not evaluate.
- :mod:`repro.experiments.report` — plain-text tables/series renderers
  shared by the drivers, examples and benchmarks.
"""

from repro.experiments.fig5 import Fig5Config, Fig5Result, run_fig5
from repro.experiments.fig6 import (
    Fig6Config,
    Fig6Result,
    paper_pcs_policy,
    run_fig6,
    run_quick_comparison,
)
from repro.experiments.fig7 import Fig7Config, Fig7Result, run_fig7

__all__ = [
    "Fig5Config",
    "Fig5Result",
    "run_fig5",
    "Fig6Config",
    "Fig6Result",
    "run_fig6",
    "run_quick_comparison",
    "paper_pcs_policy",
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
]
