"""``python -m repro.worker SPOOL`` — a distributed sweep worker.

Starts the pull-and-execute loop of
:func:`repro.sim.distributed.run_worker` against a shared spool
directory (see :mod:`repro.sim.distributed` for the protocol).  The
worker loops until the spool's ``stop`` sentinel appears; ``--stop``
writes that sentinel (and exits) so a fleet can be drained with one
command:

.. code-block:: bash

    python -m repro.worker /mnt/sweeps/spool &     # on each host
    python -m repro sweep --backend distributed \\
        --spool /mnt/sweeps/spool --wait-workers 2 ...
    python -m repro.worker /mnt/sweeps/spool --stop

``repro worker`` (the CLI subcommand) is the same entrypoint.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.errors import ReproError

__all__ = ["build_parser", "main"]


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text!r}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.worker",
        description=(
            "Distributed sweep worker: claims job files from a shared "
            "spool directory, executes the sweep points, writes results "
            "back, and loops until the spool's stop sentinel appears."
        ),
    )
    parser.add_argument("spool", help="shared spool directory")
    parser.add_argument(
        "--poll-interval",
        type=_positive_float,
        default=0.2,
        metavar="S",
        help="seconds between queue polls when idle (default 0.2)",
    )
    parser.add_argument(
        "--lease",
        type=_positive_float,
        default=None,
        metavar="S",
        help="claim heartbeat lease in seconds (default 30)",
    )
    parser.add_argument(
        "--max-jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="exit after executing N jobs (default: run until stopped)",
    )
    parser.add_argument(
        "--stop-when-idle",
        action="store_true",
        help="exit when the queue drains instead of polling for more",
    )
    parser.add_argument(
        "--stop",
        action="store_true",
        help="write the stop sentinel (draining every worker) and exit",
    )
    parser.add_argument(
        "--clear-stop",
        action="store_true",
        help="remove a previously written stop sentinel and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Import after argparse so ``--help`` stays instant.
    from repro.sim.distributed import (
        DEFAULT_LEASE_S,
        clear_stop,
        request_stop,
        run_worker,
    )

    try:
        if args.stop:
            request_stop(args.spool)
            print(f"stop sentinel written to {args.spool}")
            return 0
        if args.clear_stop:
            clear_stop(args.spool)
            print(f"stop sentinel cleared from {args.spool}")
            return 0
        executed = run_worker(
            args.spool,
            poll_interval_s=args.poll_interval,
            lease_s=args.lease if args.lease is not None else DEFAULT_LEASE_S,
            max_jobs=args.max_jobs,
            stop_when_idle=args.stop_when_idle,
        )
    except ReproError as exc:
        print(f"error: {exc}")
        return 2
    except KeyboardInterrupt:
        print("worker interrupted")
        return 130
    print(f"worker exiting after {executed} job(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
