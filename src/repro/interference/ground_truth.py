"""The ground-truth service-time inflation model.

A component of class *c* with idle-node service-time distribution
``X0`` runs, under contention vector ``U``, with distribution
``X = X0 · f_c(U)`` where the inflation factor is::

    f_c(U) = 1 + b_core·p(u_core) + b_cache·p(u_cache)
               + b_disk·p(u_disk) + b_net·p(u_net)

with every ``u`` the contention *normalised by node capacity* (so the
model is node-size independent), and ``p`` a mildly super-linear penalty
``p(u) = u + curvature·u²`` capturing that the last 20 % of a shared
resource hurts disproportionately (bandwidth saturation, cache
thrashing).  The multiplicative form mirrors the standard
interference-index models used by Bubble-Flux/Ubik-style systems cited
in the paper's related work.

The coefficients ``b_*`` are *per component class*: searching
components (index lookups) are cache/disk sensitive; segmenting is
CPU sensitive; aggregating network sensitive.

A per-window multiplicative log-normal *model noise* (default 2 %)
represents everything real hardware does that no four-feature model can
express; it sets the irreducible floor of Fig. 5's prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.cluster.node import NodeCapacity
from repro.cluster.resources import ResourceVector
from repro.errors import ConfigurationError
from repro.service.component import ComponentClass

__all__ = [
    "InterferenceCoefficients",
    "InterferenceModel",
    "default_interference_model",
]


@dataclass(frozen=True)
class InterferenceCoefficients:
    """Per-class sensitivities ``b_*`` and the penalty curvature."""

    b_core: float
    b_cache: float
    b_disk: float
    b_net: float
    curvature: float = 0.8

    def __post_init__(self) -> None:
        for name in ("b_core", "b_cache", "b_disk", "b_net", "curvature"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def as_array(self) -> np.ndarray:
        """``(b_core, b_cache, b_disk, b_net)`` aligned with ResourceVector."""
        return np.array([self.b_core, self.b_cache, self.b_disk, self.b_net])


#: Default class sensitivities — searching is cache/disk bound,
#: segmenting CPU bound, aggregating network bound.
#:
#: Magnitudes are calibrated to the paper's own motivating example
#: (§I: 99 components respond in 10 ms while an interfered straggler
#: takes 1 s — two orders of magnitude): a fully saturated node slows a
#: searching component by ~10x in raw service time, which queueing then
#: amplifies into the 100x latency stragglers the paper describes.
DEFAULT_COEFFICIENTS: Dict[ComponentClass, InterferenceCoefficients] = {
    ComponentClass.SEGMENTING: InterferenceCoefficients(
        b_core=1.20, b_cache=0.30, b_disk=0.10, b_net=0.10, curvature=2.0
    ),
    ComponentClass.SEARCHING: InterferenceCoefficients(
        b_core=0.80, b_cache=1.20, b_disk=1.00, b_net=0.30, curvature=2.0
    ),
    ComponentClass.AGGREGATING: InterferenceCoefficients(
        b_core=0.40, b_cache=0.20, b_disk=0.10, b_net=1.20, curvature=2.0
    ),
    ComponentClass.GENERIC: InterferenceCoefficients(
        b_core=0.80, b_cache=0.60, b_disk=0.60, b_net=0.30, curvature=2.0
    ),
}


class InterferenceModel:
    """Maps (component class, contention vector) → inflation factor ≥ 1.

    Parameters
    ----------
    coefficients:
        Per-class :class:`InterferenceCoefficients`; classes missing
        from the mapping fall back to ``GENERIC``.
    capacity:
        The node capacity used to normalise contention vectors.
    noise_sigma:
        Log-normal sigma of the per-evaluation model noise (0 disables;
        the mean of the noise is exactly 1 so it is unbiased).
    """

    def __init__(
        self,
        coefficients: Optional[
            Mapping[ComponentClass, InterferenceCoefficients]
        ] = None,
        capacity: Optional[NodeCapacity] = None,
        noise_sigma: float = 0.02,
    ) -> None:
        if noise_sigma < 0:
            raise ConfigurationError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self._coefficients = dict(DEFAULT_COEFFICIENTS)
        if coefficients:
            self._coefficients.update(coefficients)
        if ComponentClass.GENERIC not in self._coefficients:
            raise ConfigurationError("coefficients must include GENERIC fallback")
        self.capacity = capacity or NodeCapacity()
        self.noise_sigma = float(noise_sigma)
        self._cap_array = self.capacity.vector.as_array()

    def coefficients_for(self, cls: ComponentClass) -> InterferenceCoefficients:
        """The sensitivities for a class (GENERIC fallback)."""
        return self._coefficients.get(
            cls, self._coefficients[ComponentClass.GENERIC]
        )

    # ------------------------------------------------------------------
    # inflation
    # ------------------------------------------------------------------
    def inflation(self, cls: ComponentClass, contention: ResourceVector) -> float:
        """Noise-free inflation factor for one contention vector."""
        return float(
            self.inflation_array(cls, contention.as_array()[np.newaxis, :])[0]
        )

    def inflation_array(self, cls: ComponentClass, u: np.ndarray) -> np.ndarray:
        """Vectorised inflation for ``u`` of shape ``(n, 4)``.

        Contention is clipped to capacity before normalisation, matching
        what a component can physically observe.
        """
        u = np.asarray(u, dtype=np.float64)
        if u.ndim != 2 or u.shape[1] != 4:
            raise ConfigurationError(f"expected (n, 4) contention, got {u.shape}")
        coeff = self.coefficients_for(cls)
        norm = np.clip(u, 0.0, self._cap_array) / self._cap_array
        penalty = norm + coeff.curvature * norm * norm
        return 1.0 + penalty @ coeff.as_array()

    def noisy_inflation(
        self,
        cls: ComponentClass,
        contention: ResourceVector,
        rng: np.random.Generator,
    ) -> float:
        """Inflation with one draw of the multiplicative model noise."""
        base = self.inflation(cls, contention)
        if self.noise_sigma == 0:
            return base
        s = self.noise_sigma
        return base * float(rng.lognormal(-0.5 * s * s, s))

    # ------------------------------------------------------------------
    # service-time views
    # ------------------------------------------------------------------
    def mean_service_time(self, component, contention: ResourceVector) -> float:
        """True mean service time of ``component`` under ``contention``."""
        return component.base_service.mean * self.inflation(component.cls, contention)

    def service_distribution(self, component, contention: ResourceVector):
        """True service-time distribution under ``contention``.

        Scaling preserves the SCV — interference slows a component down
        without changing its shape, which is what makes Eq. 2's M/G/1
        usable with a contention-dependent mean.
        """
        return component.base_service.scaled(
            self.inflation(component.cls, contention)
        )

    def max_inflation(self, cls: ComponentClass) -> float:
        """Inflation at full saturation of every resource (bound for tests)."""
        coeff = self.coefficients_for(cls)
        return 1.0 + float((1.0 + coeff.curvature) * coeff.as_array().sum())


def default_interference_model(noise_sigma: float = 0.02) -> InterferenceModel:
    """The model used by all experiments unless overridden."""
    return InterferenceModel(noise_sigma=noise_sigma)
