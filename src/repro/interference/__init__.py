"""Ground-truth interference: how contention inflates service times.

On the authors' testbed this relationship is physical (cache misses,
bandwidth saturation); here it is an explicit model the *predictor never
sees* — the regressions of paper Eq. 1 must learn it from monitored
samples, exactly as they learn real hardware.  Keeping it explicit gives
the reproduction a controlled notion of "true" latency against which
prediction error (Fig. 5) is measured.
"""

from repro.interference.ground_truth import (
    InterferenceCoefficients,
    InterferenceModel,
    default_interference_model,
)

__all__ = [
    "InterferenceCoefficients",
    "InterferenceModel",
    "default_interference_model",
]
