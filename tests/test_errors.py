"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.SimulationError,
    errors.TopologyError,
    errors.PlacementError,
    errors.CapacityError,
    errors.ModelError,
    errors.NotFittedError,
    errors.UnstableQueueError,
    errors.SchedulingError,
    errors.MonitoringError,
    errors.WorkloadError,
    errors.ExperimentError,
    errors.SweepCacheError,
    errors.CacheCorruptionError,
    errors.StaleManifestError,
    errors.WorkerTaskError,
    errors.SweepExecutionError,
    errors.SweepLookupError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_value_error_compatibility():
    # Errors that reject bad values double as ValueError for idiomatic
    # caller-side handling.
    for exc in (
        errors.ConfigurationError,
        errors.TopologyError,
        errors.WorkloadError,
        errors.UnstableQueueError,
    ):
        assert issubclass(exc, ValueError)


def test_capacity_is_placement():
    assert issubclass(errors.CapacityError, errors.PlacementError)


def test_not_fitted_is_model_error():
    assert issubclass(errors.NotFittedError, errors.ModelError)


def test_cache_errors_are_experiment_errors():
    for exc in (errors.CacheCorruptionError, errors.StaleManifestError):
        assert issubclass(exc, errors.SweepCacheError)
    assert issubclass(errors.SweepCacheError, errors.ExperimentError)


def test_cache_errors_carry_the_offending_path():
    err = errors.CacheCorruptionError("bad file", path="/tmp/x.json")
    assert err.path == "/tmp/x.json"
    assert errors.StaleManifestError("old").path is None


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.SchedulingError("boom")


def test_execution_errors_are_experiment_errors():
    for exc in (
        errors.WorkerTaskError,
        errors.SweepExecutionError,
        errors.SweepLookupError,
    ):
        assert issubclass(exc, errors.ExperimentError)


def test_worker_task_error_carries_index_and_pickles():
    import pickle

    err = errors.WorkerTaskError("task 2 raised ValueError: boom", index=2)
    assert err.index == 2
    back = pickle.loads(pickle.dumps(err))
    assert back.index == 2 and "boom" in str(back)
    assert errors.WorkerTaskError("no index").index is None


def test_sweep_execution_error_carries_coordinates():
    err = errors.SweepExecutionError(
        "point failed", policy="PCS", arrival_rate=50.0, seed=3
    )
    assert (err.policy, err.arrival_rate, err.seed) == ("PCS", 50.0, 3)
    bare = errors.SweepExecutionError("unknown point")
    assert bare.policy is None and bare.seed is None


def test_sweep_lookup_error_is_keyerror_with_clean_message():
    err = errors.SweepLookupError("no sweep cell (PCS, 50, seed 3)")
    assert isinstance(err, KeyError)
    # KeyError's default str() would repr-quote the message.
    assert str(err) == "no sweep cell (PCS, 50, seed 3)"
