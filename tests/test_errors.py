"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.SimulationError,
    errors.TopologyError,
    errors.PlacementError,
    errors.CapacityError,
    errors.ModelError,
    errors.NotFittedError,
    errors.UnstableQueueError,
    errors.SchedulingError,
    errors.MonitoringError,
    errors.WorkloadError,
    errors.ExperimentError,
    errors.SweepCacheError,
    errors.CacheCorruptionError,
    errors.StaleManifestError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_value_error_compatibility():
    # Errors that reject bad values double as ValueError for idiomatic
    # caller-side handling.
    for exc in (
        errors.ConfigurationError,
        errors.TopologyError,
        errors.WorkloadError,
        errors.UnstableQueueError,
    ):
        assert issubclass(exc, ValueError)


def test_capacity_is_placement():
    assert issubclass(errors.CapacityError, errors.PlacementError)


def test_not_fitted_is_model_error():
    assert issubclass(errors.NotFittedError, errors.ModelError)


def test_cache_errors_are_experiment_errors():
    for exc in (errors.CacheCorruptionError, errors.StaleManifestError):
        assert issubclass(exc, errors.SweepCacheError)
    assert issubclass(errors.SweepCacheError, errors.ExperimentError)


def test_cache_errors_carry_the_offending_path():
    err = errors.CacheCorruptionError("bad file", path="/tmp/x.json")
    assert err.path == "/tmp/x.json"
    assert errors.StaleManifestError("old").path is None


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.SchedulingError("boom")
