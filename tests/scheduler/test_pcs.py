"""Tests for Algorithm 1 (the greedy PCS scheduler)."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.model.matrix import MatrixInputs, PerformanceMatrix
from repro.model.predictor import LatencyPredictor
from repro.scheduler.pcs import (
    PCSScheduler,
    SchedulerConfig,
    exhaustive_best_single_migration,
)
from repro.scheduler.threshold import StaticThreshold
from repro.service.component import ComponentClass
from repro.units import ms


class StubPredictor(LatencyPredictor):
    rho_max = 0.98

    def __init__(self):
        self.coef = np.array([0.5, 0.01, 0.002, 0.004])

    def predict_mean_service(self, cls, contention):
        u = np.atleast_2d(np.asarray(contention, dtype=np.float64))
        return 0.006 * (1.0 + u @ self.coef)

    def scv(self, cls):
        return 1.0


def _skewed_inputs(rng, m=12, k=4):
    """All components crammed on node 0; other nodes idle — plenty of
    profitable migrations for the greedy to find."""
    stage_of = np.sort(rng.integers(0, 3, m))
    demands = rng.uniform(0.05, 0.2, (m, 4)) * np.array([1.0, 8.0, 30.0, 10.0])
    assignment = np.zeros(m, dtype=np.int64)
    node_totals = np.zeros((k, 4))
    node_totals[0] = demands.sum(axis=0) + np.array([0.3, 10.0, 50.0, 20.0])
    arrival = np.full(m, 30.0)
    return MatrixInputs(
        stage_of, [ComponentClass.GENERIC] * m, demands, assignment,
        node_totals, arrival,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestGreedyLoop:
    def test_migrations_reduce_predicted_overall(self, rng):
        inputs = _skewed_inputs(rng)
        scheduler = PCSScheduler(StubPredictor())
        outcome = scheduler.schedule(inputs)
        assert outcome.n_migrations > 0
        assert outcome.final_overall_s < outcome.initial_overall_s
        assert outcome.predicted_reduction_s > 0

    def test_each_component_migrates_at_most_once(self, rng):
        inputs = _skewed_inputs(rng)
        outcome = PCSScheduler(StubPredictor()).schedule(inputs)
        moved = [m.component_index for m in outcome.migrations]
        assert len(moved) == len(set(moved))

    def test_every_migration_clears_threshold(self, rng):
        eps = ms(5)
        inputs = _skewed_inputs(rng)
        cfg = SchedulerConfig(threshold=StaticThreshold(eps))
        outcome = PCSScheduler(StubPredictor(), cfg).schedule(inputs)
        for mig in outcome.migrations:
            assert mig.predicted_gain_s > eps

    def test_high_threshold_blocks_all_migrations(self, rng):
        inputs = _skewed_inputs(rng)
        cfg = SchedulerConfig(threshold=StaticThreshold(10.0))  # 10 s!
        outcome = PCSScheduler(StubPredictor(), cfg).schedule(inputs)
        assert outcome.n_migrations == 0
        assert outcome.final_overall_s == outcome.initial_overall_s

    def test_first_migration_matches_exhaustive(self, rng):
        inputs = _skewed_inputs(rng, m=8, k=3)
        best = exhaustive_best_single_migration(inputs, StubPredictor())
        outcome = PCSScheduler(StubPredictor()).schedule(inputs.copy())
        assert outcome.migrations  # something must clear 5 ms here
        first = outcome.migrations[0]
        assert first.predicted_gain_s == pytest.approx(
            best.predicted_gain_s, rel=1e-9
        )

    def test_max_migrations_cap(self, rng):
        inputs = _skewed_inputs(rng)
        cfg = SchedulerConfig(max_migrations=2)
        outcome = PCSScheduler(StubPredictor(), cfg).schedule(inputs)
        assert outcome.n_migrations <= 2

    def test_assignment_consistent_with_migrations(self, rng):
        inputs = _skewed_inputs(rng)
        original = inputs.assignment.copy()
        outcome = PCSScheduler(StubPredictor()).schedule(inputs)
        expected = original.copy()
        for mig in outcome.migrations:
            assert expected[mig.component_index] == mig.origin
            expected[mig.component_index] = mig.destination
        np.testing.assert_array_equal(outcome.assignment, expected)

    def test_update_modes_agree_on_quality(self, rng):
        """Algorithm 2's partial update must land within a few percent of
        the exact full-rebuild schedule (it is the paper's approximation)."""
        inputs = _skewed_inputs(rng, m=10, k=4)
        out_a2 = PCSScheduler(
            StubPredictor(), SchedulerConfig(update_mode="algorithm2")
        ).schedule(inputs.copy())
        out_full = PCSScheduler(
            StubPredictor(), SchedulerConfig(update_mode="full")
        ).schedule(inputs.copy())
        assert out_a2.final_overall_s == pytest.approx(
            out_full.final_overall_s, rel=0.05
        )

    def test_times_recorded(self, rng):
        outcome = PCSScheduler(StubPredictor()).schedule(_skewed_inputs(rng))
        assert outcome.analysis_time_s > 0
        assert outcome.search_time_s > 0
        assert outcome.total_time_s == pytest.approx(
            outcome.analysis_time_s + outcome.search_time_s
        )

    def test_balanced_cluster_no_migrations(self):
        """Perfectly symmetric allocation: nothing clears the threshold."""
        m, k = 8, 4
        stage_of = np.zeros(m, dtype=np.int64)
        demands = np.tile([0.1, 2.0, 10.0, 5.0], (m, 1))
        assignment = np.arange(m) % k
        node_totals = np.zeros((k, 4))
        for i in range(m):
            node_totals[assignment[i]] += demands[i]
        inputs = MatrixInputs(
            stage_of, [ComponentClass.GENERIC] * m, demands, assignment,
            node_totals, np.full(m, 20.0),
        )
        outcome = PCSScheduler(StubPredictor()).schedule(inputs)
        assert outcome.n_migrations == 0


class TestSchedulerConfig:
    def test_bad_update_mode(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(update_mode="psychic")

    def test_bad_build_method(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(build_method="guess")

    def test_negative_migration_cap(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(max_migrations=-1)

    def test_negative_tie_tolerance(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(tie_tolerance=-1e-9)


class TestPaperFig4Scenario:
    """Fig. 4: two candidate migrations tie on overall reduction; the
    one that helps the migrated component itself more wins."""

    def test_tie_break_prefers_larger_self_gain(self, monkeypatch, rng):
        inputs = _skewed_inputs(rng, m=6, k=3)
        scheduler = PCSScheduler(StubPredictor(), SchedulerConfig(max_migrations=1))

        forced_L = np.zeros((inputs.m, inputs.k))
        forced_R = np.zeros((inputs.m, inputs.k))
        # Entries (2, 1) and (2, 2) tie at 30 ms overall reduction;
        # self-reduction 20 ms vs 30 ms -> node 2 must win (paper Fig. 4).
        forced_L[2, 1] = forced_L[2, 2] = 0.030
        forced_R[2, 1], forced_R[2, 2] = 0.020, 0.030

        def fake_build(self, method="fast"):
            self.L = forced_L.copy()
            self.R = forced_R.copy()
            return self

        monkeypatch.setattr(PerformanceMatrix, "build", fake_build)
        outcome = scheduler.schedule(inputs)
        assert outcome.n_migrations == 1
        assert outcome.migrations[0].component_index == 2
        assert outcome.migrations[0].destination == 2
