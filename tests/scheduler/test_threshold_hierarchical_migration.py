"""Tests for threshold policies, hierarchical scheduling, and migration
enforcement."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeCapacity
from repro.errors import SchedulingError
from repro.model.matrix import MatrixInputs
from repro.model.predictor import LatencyPredictor
from repro.scheduler.hierarchical import HierarchicalScheduler
from repro.scheduler.migration import MigrationCostModel, MigrationExecutor
from repro.scheduler.pcs import PCSScheduler, SchedulerConfig
from repro.scheduler.threshold import AdaptiveThreshold, StaticThreshold
from repro.service.component import Component, ComponentClass
from repro.simcore.distributions import Exponential
from repro.units import ms


class StubPredictor(LatencyPredictor):
    rho_max = 0.98

    def __init__(self):
        self.coef = np.array([0.5, 0.01, 0.002, 0.004])

    def predict_mean_service(self, cls, contention):
        u = np.atleast_2d(np.asarray(contention, dtype=np.float64))
        return 0.006 * (1.0 + u @ self.coef)

    def scv(self, cls):
        return 1.0


class TestThresholds:
    def test_static_is_constant(self):
        t = StaticThreshold(ms(5))
        assert t.epsilon(0.010) == t.epsilon(10.0) == ms(5)

    def test_static_paper_default(self):
        assert StaticThreshold().epsilon_s == pytest.approx(ms(5))

    def test_static_invalid(self):
        with pytest.raises(SchedulingError):
            StaticThreshold(0.0)

    def test_adaptive_tracks_fraction(self):
        t = AdaptiveThreshold(fraction=0.05)
        # Paper's anchor: 5% of 100 ms = 5 ms.
        assert t.epsilon(0.100) == pytest.approx(ms(5))
        assert t.epsilon(0.400) == pytest.approx(ms(20))

    def test_adaptive_clamps(self):
        t = AdaptiveThreshold(fraction=0.05, min_epsilon_s=ms(1), max_epsilon_s=ms(50))
        assert t.epsilon(0.0) == pytest.approx(ms(1))
        assert t.epsilon(100.0) == pytest.approx(ms(50))

    def test_adaptive_invalid(self):
        with pytest.raises(SchedulingError):
            AdaptiveThreshold(fraction=0.0)
        with pytest.raises(SchedulingError):
            AdaptiveThreshold(min_epsilon_s=ms(10), max_epsilon_s=ms(5))
        with pytest.raises(SchedulingError):
            AdaptiveThreshold().epsilon(-1.0)


def _skewed_inputs(rng, m, k):
    stage_of = np.sort(rng.integers(0, 3, m))
    demands = rng.uniform(0.05, 0.2, (m, 4)) * np.array([1.0, 8.0, 30.0, 10.0])
    assignment = np.zeros(m, dtype=np.int64)
    node_totals = np.zeros((k, 4))
    node_totals[0] = demands.sum(axis=0)
    return MatrixInputs(
        stage_of, [ComponentClass.GENERIC] * m, demands, assignment,
        node_totals, np.full(m, 25.0),
    )


class TestHierarchical:
    def test_small_instance_delegates_to_flat(self):
        rng = np.random.default_rng(0)
        inputs = _skewed_inputs(rng, m=8, k=3)
        flat = PCSScheduler(StubPredictor()).schedule(inputs.copy())
        hier = HierarchicalScheduler(StubPredictor(), group_size=640).schedule(
            inputs.copy()
        )
        assert hier.n_migrations == flat.n_migrations
        np.testing.assert_array_equal(hier.assignment, flat.assignment)

    def test_chunked_scheduling_still_improves(self):
        rng = np.random.default_rng(1)
        inputs = _skewed_inputs(rng, m=24, k=4)
        hier = HierarchicalScheduler(StubPredictor(), group_size=8)
        outcome = hier.schedule(inputs)
        assert outcome.n_migrations > 0
        # Node totals stay conserved across chunks.
        total = inputs.node_totals.sum(axis=0)
        expected = inputs.demands.sum(axis=0)
        np.testing.assert_allclose(total, expected, atol=1e-9)

    def test_migration_indices_are_global(self):
        rng = np.random.default_rng(2)
        inputs = _skewed_inputs(rng, m=20, k=4)
        outcome = HierarchicalScheduler(StubPredictor(), group_size=5).schedule(
            inputs
        )
        # At least one migration must come from a later chunk.
        assert any(m.component_index >= 5 for m in outcome.migrations)
        for mig in outcome.migrations:
            assert 0 <= mig.component_index < 20

    def test_bad_group_size(self):
        with pytest.raises(SchedulingError):
            HierarchicalScheduler(StubPredictor(), group_size=0)


class TestMigrationCostModel:
    def test_paper_batch_claim_holds(self):
        assert MigrationCostModel().paper_batch_consistent()

    def test_zero_migrations_free(self):
        assert MigrationCostModel().enforcement_time_s(0) == 0.0

    def test_affine_growth(self):
        m = MigrationCostModel(fixed_s=1.0, per_component_s=0.1)
        assert m.enforcement_time_s(10) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            MigrationCostModel(fixed_s=-1.0)
        with pytest.raises(SchedulingError):
            MigrationCostModel(warmup_penalty=0.5)
        with pytest.raises(SchedulingError):
            MigrationCostModel().enforcement_time_s(-1)


class TestMigrationExecutor:
    def _setup(self):
        cluster = Cluster.homogeneous(3, NodeCapacity(machine_slots=8))
        comps = [
            Component(
                name=f"c{i}",
                cls=ComponentClass.GENERIC,
                base_service=Exponential(ms(5)),
            )
            for i in range(4)
        ]
        for c in comps:
            cluster.place(c, "node-0")
        return cluster, comps

    def test_enforce_moves_components(self):
        from repro.scheduler.pcs import Migration, SchedulingOutcome

        cluster, comps = self._setup()
        outcome = SchedulingOutcome(
            migrations=[
                Migration(0, 0, 1, ms(10), ms(8)),
                Migration(2, 0, 2, ms(7), ms(6)),
            ],
            initial_overall_s=0.1,
            final_overall_s=0.08,
            analysis_time_s=0.0,
            search_time_s=0.0,
            assignment=np.array([1, 0, 2, 0]),
        )
        executor = MigrationExecutor(cluster, comps)
        moved = executor.enforce(outcome)
        assert moved == {"c0": 1, "c2": 2}
        assert cluster.node_of(comps[0]).name == "node-1"
        assert cluster.node_of(comps[2]).name == "node-2"
        assert executor.enforced == 2
        assert executor.total_enforcement_time_s > 0
        assert [c.name for c in executor.warmup_components(outcome)] == ["c0", "c2"]

    def test_enforce_detects_stale_outcome(self):
        from repro.scheduler.pcs import Migration, SchedulingOutcome

        cluster, comps = self._setup()
        outcome = SchedulingOutcome(
            migrations=[Migration(0, 2, 1, ms(10), ms(8))],  # wrong origin
            initial_overall_s=0.1,
            final_overall_s=0.09,
            analysis_time_s=0.0,
            search_time_s=0.0,
            assignment=np.array([1, 0, 0, 0]),
        )
        with pytest.raises(SchedulingError):
            MigrationExecutor(cluster, comps).enforce(outcome)


class TestHierarchicalDag:
    """Chunked scheduling must keep the DAG critical-path objective
    (restricted to each chunk's stage range), not silently revert to
    the chain sum."""

    def test_chunk_predecessors_restricts_and_renumbers(self):
        from repro.scheduler.hierarchical import chunk_predecessors

        # Diamond over stages 0..3 plus a tail 4 waiting on 3.
        preds = ((), (0,), (0,), (0, 1, 2), (3,))
        # Chunk covering stages 2..4: the edges into 0 and 1 drop
        # (fixed outside), survivors renumber to the chunk frame —
        # stage 3 keeps only its edge from stage 2 (local 0), stage 4
        # its edge from stage 3 (local 1).
        assert chunk_predecessors(preds, 2, 4) == ((), (0,), (1,))
        # Full range is the identity.
        assert chunk_predecessors(preds, 0, 4) == preds
        # A single-stage chunk is one entry stage.
        assert chunk_predecessors(preds, 3, 3) == ((),)

    def test_chunks_receive_the_truncated_dag(self):
        """Every per-chunk sub-MatrixInputs carries stage_predecessors
        (restricted + renumbered), never None for a DAG instance."""
        from tests.model.test_matrix import _random_inputs

        rng = np.random.default_rng(5)
        inputs = _random_inputs(rng, m=18, k=4, n_stages=4)
        n = int(inputs.stage_of.max()) + 1
        inputs.stage_predecessors = tuple(
            () if s == 0 else ((0,) if s < n - 1 else tuple(range(n - 1)))
            for s in range(n)
        )
        scheduler = HierarchicalScheduler(StubPredictor(), group_size=6)
        seen = []
        original = scheduler._inner.schedule

        def capture(sub):
            seen.append(sub.stage_predecessors)
            return original(sub)

        scheduler._inner.schedule = capture
        scheduler.schedule(inputs)
        assert len(seen) >= 2  # actually chunked
        assert all(preds is not None for preds in seen)
        for preds in seen:
            # Valid local DAG: distinct earlier indices per stage.
            for si, ps in enumerate(preds):
                assert all(0 <= p < si for p in ps)

    def test_chain_chunks_stay_on_the_exact_sum_path(self):
        from tests.model.test_matrix import _random_inputs

        rng = np.random.default_rng(6)
        inputs = _random_inputs(rng, m=18, k=4, n_stages=4)
        scheduler = HierarchicalScheduler(StubPredictor(), group_size=6)
        seen = []
        original = scheduler._inner.schedule

        def capture(sub):
            seen.append(sub.stage_predecessors)
            return original(sub)

        scheduler._inner.schedule = capture
        scheduler.schedule(inputs)
        assert seen and all(preds is None for preds in seen)
