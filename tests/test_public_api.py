"""The public API surface: everything README documents must import."""

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.simcore",
    "repro.cluster",
    "repro.workloads",
    "repro.service",
    "repro.interference",
    "repro.monitoring",
    "repro.model",
    "repro.scheduler",
    "repro.baselines",
    "repro.sim",
    "repro.experiments",
    "repro.cli",
]


@pytest.mark.parametrize("module", PUBLIC_MODULES)
def test_module_imports(module):
    importlib.import_module(module)


@pytest.mark.parametrize("module", PUBLIC_MODULES)
def test_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name) is not None, f"{module}.{name}"


def test_top_level_lazy_exports():
    import repro

    assert callable(repro.build_nutch_service)
    assert callable(repro.standard_policies)
    assert repro.PCSScheduler.__name__ == "PCSScheduler"
    assert repro.ExperimentRunner is not None
    assert repro.RunnerConfig is not None
    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_readme_quickstart_snippet_runs():
    """The exact snippet from README must work (tiny scale)."""
    from repro.experiments.fig6 import run_quick_comparison

    result = run_quick_comparison(arrival_rate=60.0, seed=2, n_intervals=4)
    out = result.render()
    assert "Basic" in out and "PCS" in out
