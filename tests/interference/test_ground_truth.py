"""Tests for the ground-truth interference model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import NodeCapacity
from repro.cluster.resources import ResourceVector
from repro.errors import ConfigurationError
from repro.interference.ground_truth import (
    InterferenceCoefficients,
    InterferenceModel,
    default_interference_model,
)
from repro.service.component import Component, ComponentClass
from repro.simcore.distributions import LogNormal
from repro.units import ms

contention_vectors = st.builds(
    ResourceVector,
    core=st.floats(min_value=0.0, max_value=1.5),
    cache_mpki=st.floats(min_value=0.0, max_value=100.0),
    disk_bw=st.floats(min_value=0.0, max_value=400.0),
    net_bw=st.floats(min_value=0.0, max_value=200.0),
)


@pytest.fixture
def model():
    return default_interference_model(noise_sigma=0.0)


class TestInflation:
    def test_idle_node_no_inflation(self, model):
        assert model.inflation(
            ComponentClass.SEARCHING, ResourceVector.zero()
        ) == pytest.approx(1.0)

    @given(u=contention_vectors)
    @settings(max_examples=100, deadline=None)
    def test_inflation_at_least_one(self, u):
        model = default_interference_model(noise_sigma=0.0)
        assert model.inflation(ComponentClass.SEARCHING, u) >= 1.0

    @given(u=contention_vectors)
    @settings(max_examples=50, deadline=None)
    def test_inflation_bounded_by_max(self, u):
        model = default_interference_model(noise_sigma=0.0)
        for cls in ComponentClass:
            assert model.inflation(cls, u) <= model.max_inflation(cls) + 1e-9

    def test_monotone_in_each_resource(self, model):
        base = ResourceVector(core=0.2, cache_mpki=5.0, disk_bw=20.0, net_bw=10.0)
        for bump in (
            ResourceVector(core=0.3),
            ResourceVector(cache_mpki=10.0),
            ResourceVector(disk_bw=50.0),
            ResourceVector(net_bw=30.0),
        ):
            lo = model.inflation(ComponentClass.SEARCHING, base)
            hi = model.inflation(ComponentClass.SEARCHING, base + bump)
            assert hi > lo

    def test_saturates_beyond_capacity(self, model):
        cap = NodeCapacity().vector
        over = ResourceVector(core=5.0, cache_mpki=500.0, disk_bw=9e3, net_bw=9e3)
        assert model.inflation(ComponentClass.SEARCHING, over) == pytest.approx(
            model.inflation(ComponentClass.SEARCHING, cap)
        )

    def test_class_sensitivities_differ(self, model):
        # Segmenting is CPU-sensitive; aggregating is network-sensitive.
        cpu_heavy = ResourceVector(core=0.8)
        net_heavy = ResourceVector(net_bw=100.0)
        assert model.inflation(
            ComponentClass.SEGMENTING, cpu_heavy
        ) > model.inflation(ComponentClass.AGGREGATING, cpu_heavy)
        assert model.inflation(
            ComponentClass.AGGREGATING, net_heavy
        ) > model.inflation(ComponentClass.SEGMENTING, net_heavy)

    def test_vectorised_matches_scalar(self, model):
        rng = np.random.default_rng(0)
        us = rng.uniform(0, 1, size=(50, 4)) * np.array([1.0, 60.0, 300.0, 125.0])
        batch = model.inflation_array(ComponentClass.SEARCHING, us)
        single = [
            model.inflation(ComponentClass.SEARCHING, ResourceVector(*u)) for u in us
        ]
        np.testing.assert_allclose(batch, single, rtol=1e-12)

    def test_bad_array_shape_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.inflation_array(ComponentClass.SEARCHING, np.zeros((3, 3)))

    def test_unknown_class_falls_back_to_generic(self, model):
        u = ResourceVector(core=0.5)
        generic = model.inflation(ComponentClass.GENERIC, u)
        assert generic > 1.0


class TestNoise:
    def test_noise_unbiased(self):
        model = default_interference_model(noise_sigma=0.05)
        rng = np.random.default_rng(1)
        u = ResourceVector(core=0.5, disk_bw=100.0)
        draws = np.array(
            [
                model.noisy_inflation(ComponentClass.SEARCHING, u, rng)
                for _ in range(20_000)
            ]
        )
        clean = model.inflation(ComponentClass.SEARCHING, u)
        assert draws.mean() == pytest.approx(clean, rel=0.01)
        assert draws.std() / clean == pytest.approx(0.05, rel=0.15)

    def test_zero_noise_deterministic(self):
        model = default_interference_model(noise_sigma=0.0)
        rng = np.random.default_rng(2)
        u = ResourceVector(core=0.3)
        a = model.noisy_inflation(ComponentClass.SEARCHING, u, rng)
        b = model.noisy_inflation(ComponentClass.SEARCHING, u, rng)
        assert a == b

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            InterferenceModel(noise_sigma=-0.1)


class TestServiceTimeViews:
    def _component(self):
        return Component(
            name="c",
            cls=ComponentClass.SEARCHING,
            base_service=LogNormal(ms(6), 0.8),
        )

    def test_mean_service_time_scales(self, model):
        c = self._component()
        u = ResourceVector(core=0.6, disk_bw=150.0)
        expected = c.base_mean * model.inflation(c.cls, u)
        assert model.mean_service_time(c, u) == pytest.approx(expected)

    def test_distribution_preserves_scv(self, model):
        c = self._component()
        u = ResourceVector(core=0.9, cache_mpki=40.0)
        dist = model.service_distribution(c, u)
        assert dist.scv == pytest.approx(c.base_scv)
        assert dist.mean == pytest.approx(model.mean_service_time(c, u))


class TestCoefficients:
    def test_negative_coefficient_rejected(self):
        with pytest.raises(ConfigurationError):
            InterferenceCoefficients(b_core=-0.1, b_cache=0, b_disk=0, b_net=0)

    def test_override_single_class(self):
        custom = InterferenceCoefficients(
            b_core=9.0, b_cache=0.0, b_disk=0.0, b_net=0.0, curvature=0.0
        )
        model = InterferenceModel(
            coefficients={ComponentClass.SEARCHING: custom}, noise_sigma=0.0
        )
        u = ResourceVector(core=0.5)
        assert model.inflation(ComponentClass.SEARCHING, u) == pytest.approx(5.5)
        # Other classes keep their defaults.
        assert model.inflation(ComponentClass.SEGMENTING, u) < 5.5
