"""Unit + property tests for service-time distributions.

Each distribution's analytic moments are checked against large-sample
Monte-Carlo estimates, and the scaling algebra (used by the interference
model) is property-tested.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simcore.distributions import (
    Deterministic,
    Empirical,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    ShiftedExponential,
    Uniform,
    Weibull,
)

N_SAMPLES = 200_000


def _check_moments(dist, rng, rel_tol=0.05):
    xs = dist.sample(rng, N_SAMPLES)
    assert xs.shape == (N_SAMPLES,)
    assert np.all(xs >= 0)
    assert dist.mean == pytest.approx(float(xs.mean()), rel=rel_tol)
    if dist.var > 0:
        assert dist.var == pytest.approx(float(xs.var()), rel=3 * rel_tol)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


ALL_DISTS = [
    Deterministic(0.01),
    Exponential(0.02),
    ShiftedExponential(0.005, 0.01),
    HyperExponential(probs=(0.9, 0.1), means=(0.01, 0.1)),
    LogNormal(0.02, 0.5),
    Pareto(0.01, 3.0),
    Uniform(0.0, 0.04),
    Weibull(0.02, 2.0),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_analytic_moments_match_samples(dist, rng):
    _check_moments(dist, rng)


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_scalar_sample(dist, rng):
    x = dist.sample(rng)
    assert np.isscalar(x) or np.ndim(x) == 0
    assert float(x) >= 0.0


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_scv_definition(dist):
    if dist.mean > 0:
        assert dist.scv == pytest.approx(dist.var / dist.mean**2)


class TestSpecificShapes:
    def test_deterministic_has_zero_scv(self):
        assert Deterministic(0.5).scv == 0.0

    def test_exponential_has_unit_scv(self):
        assert Exponential(0.123).scv == pytest.approx(1.0)

    def test_exponential_rate(self):
        assert Exponential(0.02).rate == pytest.approx(50.0)

    def test_hyperexponential_scv_above_one(self):
        h = HyperExponential(probs=(0.9, 0.1), means=(0.01, 0.1))
        assert h.scv > 1.0

    def test_weibull_shape_above_one_scv_below_one(self):
        assert Weibull(1.0, 2.0).scv < 1.0

    def test_lognormal_moments_exact_by_construction(self):
        d = LogNormal(0.05, 0.7)
        assert d.mean == pytest.approx(0.05)
        assert d.scv == pytest.approx(0.7)

    def test_shifted_exponential_floor(self, rng):
        d = ShiftedExponential(0.01, 0.005)
        xs = d.sample(rng, 1000)
        assert np.all(xs >= 0.01)

    def test_pareto_minimum(self, rng):
        d = Pareto(0.02, 3.5)
        xs = d.sample(rng, 1000)
        assert np.all(xs >= 0.02)


class TestValidation:
    def test_deterministic_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Deterministic(-1.0)

    def test_exponential_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            Exponential(0.0)

    def test_hyperexponential_bad_probs_rejected(self):
        with pytest.raises(ConfigurationError):
            HyperExponential(probs=(0.5, 0.6), means=(1.0, 2.0))

    def test_hyperexponential_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            HyperExponential(probs=(1.0,), means=(1.0, 2.0))

    def test_pareto_infinite_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            Pareto(1.0, 2.0)

    def test_uniform_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Uniform(2.0, 1.0)

    def test_weibull_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            Weibull(0.0, 1.0)

    def test_empirical_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Empirical([])

    def test_empirical_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Empirical([0.1, -0.2])


class TestEmpirical:
    def test_moments_are_sample_moments(self):
        values = [1.0, 2.0, 3.0, 4.0]
        d = Empirical(values)
        assert d.mean == pytest.approx(2.5)
        assert d.var == pytest.approx(np.var(values))

    def test_samples_drawn_from_support(self, rng):
        d = Empirical([0.1, 0.2, 0.3])
        xs = d.sample(rng, 500)
        assert set(np.unique(xs)) <= {0.1, 0.2, 0.3}

    def test_values_view_is_readonly(self):
        d = Empirical([1.0, 2.0])
        with pytest.raises(ValueError):
            d.values[0] = 9.0


class TestScaling:
    @given(
        factor=st.floats(min_value=0.01, max_value=100.0),
        mean=st.floats(min_value=1e-4, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_scaled_moments(self, factor, mean):
        d = Exponential(mean).scaled(factor)
        assert d.mean == pytest.approx(factor * mean, rel=1e-9)
        assert d.var == pytest.approx((factor * mean) ** 2, rel=1e-9)
        assert d.scv == pytest.approx(1.0, rel=1e-9)

    def test_scale_by_one_returns_self(self):
        d = Exponential(1.0)
        assert d.scaled(1.0) is d

    def test_nested_scaling_collapses(self):
        d = Exponential(1.0).scaled(2.0).scaled(3.0)
        assert d.factor == pytest.approx(6.0)
        assert isinstance(d.base, Exponential)

    def test_with_mean_hits_target(self):
        d = LogNormal(0.02, 0.5).with_mean(0.08)
        assert d.mean == pytest.approx(0.08)
        assert d.scv == pytest.approx(0.5)

    def test_scaled_samples_match_factor(self, rng):
        base = Deterministic(2.0)
        assert float(base.scaled(3.0).sample(rng)) == pytest.approx(6.0)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            Exponential(1.0).scaled(0.0)

    def test_with_mean_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            Exponential(1.0).with_mean(-1.0)
