"""Property tests: vectorised Lindley kernel == textbook recursion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import SimulationError
from repro.simcore.lindley import (
    busy_fraction,
    fifo_departures,
    lindley_waits,
    lindley_waits_reference,
    sojourn_times,
)


def _arrivals_and_services(draw_sizes=st.integers(min_value=0, max_value=200)):
    @st.composite
    def strat(draw):
        n = draw(draw_sizes)
        gaps = draw(
            arrays(
                np.float64,
                n,
                elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            )
        )
        services = draw(
            arrays(
                np.float64,
                n,
                elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            )
        )
        w0 = draw(st.floats(min_value=0.0, max_value=10.0))
        return np.cumsum(gaps), services, w0

    return strat()


class TestVectorisedMatchesReference:
    @given(_arrivals_and_services())
    @settings(max_examples=200, deadline=None)
    def test_waits_equal(self, case):
        arrivals, services, w0 = case
        fast = lindley_waits(arrivals, services, w0)
        ref = lindley_waits_reference(arrivals, services, w0)
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=1e-9)

    @given(_arrivals_and_services())
    @settings(max_examples=100, deadline=None)
    def test_waits_nonnegative(self, case):
        arrivals, services, w0 = case
        assert np.all(lindley_waits(arrivals, services, w0) >= -1e-12)

    def test_random_poisson_stream(self):
        rng = np.random.default_rng(7)
        arrivals = np.cumsum(rng.exponential(0.01, 5000))
        services = rng.exponential(0.008, 5000)
        np.testing.assert_allclose(
            lindley_waits(arrivals, services),
            lindley_waits_reference(arrivals, services),
            rtol=1e-10,
            atol=1e-12,
        )


class TestHandComputedCases:
    def test_empty(self):
        assert lindley_waits([], []).size == 0

    def test_single_request_waits_initial_work(self):
        assert lindley_waits([0.0], [1.0], initial_work=0.7)[0] == pytest.approx(0.7)

    def test_back_to_back_queueing(self):
        # Arrivals every 1s, each service takes 2s: waits grow by 1s each.
        arrivals = [0.0, 1.0, 2.0, 3.0]
        services = [2.0, 2.0, 2.0, 2.0]
        np.testing.assert_allclose(
            lindley_waits(arrivals, services), [0.0, 1.0, 2.0, 3.0]
        )

    def test_idle_server_never_waits(self):
        arrivals = [0.0, 10.0, 20.0]
        services = [1.0, 1.0, 1.0]
        np.testing.assert_allclose(lindley_waits(arrivals, services), [0.0, 0.0, 0.0])

    def test_queue_drains_after_gap(self):
        # Burst then long gap: the 3rd request finds an empty server.
        arrivals = [0.0, 0.0, 100.0]
        services = [5.0, 5.0, 5.0]
        np.testing.assert_allclose(lindley_waits(arrivals, services), [0.0, 5.0, 0.0])

    def test_sojourn_is_wait_plus_service(self):
        arrivals = [0.0, 1.0]
        services = [3.0, 2.0]
        np.testing.assert_allclose(sojourn_times(arrivals, services), [3.0, 4.0])

    def test_departures_monotone_fifo(self):
        rng = np.random.default_rng(1)
        arrivals = np.cumsum(rng.exponential(1.0, 500))
        services = rng.exponential(0.8, 500)
        dep = fifo_departures(arrivals, services)
        assert np.all(np.diff(dep) >= -1e-12)
        assert np.all(dep >= arrivals + services - 1e-12)


class TestBusyFraction:
    def test_matches_utilisation_mm1(self):
        rng = np.random.default_rng(3)
        lam, mu = 50.0, 100.0
        n = 60_000
        arrivals = np.cumsum(rng.exponential(1.0 / lam, n))
        services = rng.exponential(1.0 / mu, n)
        horizon = arrivals[-1] - arrivals[0]
        rho_hat = busy_fraction(arrivals, services, horizon)
        assert rho_hat == pytest.approx(lam / mu, rel=0.05)

    def test_empty_stream_zero(self):
        assert busy_fraction([], [], 1.0) == 0.0

    def test_bad_horizon_rejected(self):
        with pytest.raises(SimulationError):
            busy_fraction([0.0], [1.0], 0.0)


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([0.0, 1.0], [1.0])

    def test_decreasing_arrivals_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([1.0, 0.5], [1.0, 1.0])

    def test_negative_service_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([0.0, 1.0], [1.0, -0.1])

    def test_negative_initial_work_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([0.0], [1.0], initial_work=-1.0)

    def test_2d_input_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits(np.zeros((2, 2)), np.zeros((2, 2)))
