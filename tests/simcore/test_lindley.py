"""Property tests: vectorised Lindley kernel == textbook recursion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import SimulationError
from repro.simcore.lindley import (
    LindleyCarry,
    busy_fraction,
    fifo_departures,
    lindley_waits,
    lindley_waits_chunked,
    lindley_waits_reference,
    sojourn_times,
)


def _arrivals_and_services(draw_sizes=st.integers(min_value=0, max_value=200)):
    @st.composite
    def strat(draw):
        n = draw(draw_sizes)
        gaps = draw(
            arrays(
                np.float64,
                n,
                elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            )
        )
        services = draw(
            arrays(
                np.float64,
                n,
                elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            )
        )
        w0 = draw(st.floats(min_value=0.0, max_value=10.0))
        return np.cumsum(gaps), services, w0

    return strat()


class TestVectorisedMatchesReference:
    @given(_arrivals_and_services())
    @settings(max_examples=200, deadline=None)
    def test_waits_equal(self, case):
        arrivals, services, w0 = case
        fast = lindley_waits(arrivals, services, w0)
        ref = lindley_waits_reference(arrivals, services, w0)
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=1e-9)

    @given(_arrivals_and_services())
    @settings(max_examples=100, deadline=None)
    def test_waits_nonnegative(self, case):
        arrivals, services, w0 = case
        assert np.all(lindley_waits(arrivals, services, w0) >= -1e-12)

    def test_random_poisson_stream(self):
        rng = np.random.default_rng(7)
        arrivals = np.cumsum(rng.exponential(0.01, 5000))
        services = rng.exponential(0.008, 5000)
        np.testing.assert_allclose(
            lindley_waits(arrivals, services),
            lindley_waits_reference(arrivals, services),
            rtol=1e-10,
            atol=1e-12,
        )


class TestHandComputedCases:
    def test_empty(self):
        assert lindley_waits([], []).size == 0

    def test_single_request_waits_initial_work(self):
        assert lindley_waits([0.0], [1.0], initial_work=0.7)[0] == pytest.approx(0.7)

    def test_back_to_back_queueing(self):
        # Arrivals every 1s, each service takes 2s: waits grow by 1s each.
        arrivals = [0.0, 1.0, 2.0, 3.0]
        services = [2.0, 2.0, 2.0, 2.0]
        np.testing.assert_allclose(
            lindley_waits(arrivals, services), [0.0, 1.0, 2.0, 3.0]
        )

    def test_idle_server_never_waits(self):
        arrivals = [0.0, 10.0, 20.0]
        services = [1.0, 1.0, 1.0]
        np.testing.assert_allclose(lindley_waits(arrivals, services), [0.0, 0.0, 0.0])

    def test_queue_drains_after_gap(self):
        # Burst then long gap: the 3rd request finds an empty server.
        arrivals = [0.0, 0.0, 100.0]
        services = [5.0, 5.0, 5.0]
        np.testing.assert_allclose(lindley_waits(arrivals, services), [0.0, 5.0, 0.0])

    def test_sojourn_is_wait_plus_service(self):
        arrivals = [0.0, 1.0]
        services = [3.0, 2.0]
        np.testing.assert_allclose(sojourn_times(arrivals, services), [3.0, 4.0])

    def test_departures_monotone_fifo(self):
        rng = np.random.default_rng(1)
        arrivals = np.cumsum(rng.exponential(1.0, 500))
        services = rng.exponential(0.8, 500)
        dep = fifo_departures(arrivals, services)
        assert np.all(np.diff(dep) >= -1e-12)
        assert np.all(dep >= arrivals + services - 1e-12)


def _chunk_bounds(rng, n, max_chunks=8):
    """Random split points 0 = b0 < b1 < ... < bk = n."""
    k = int(rng.integers(1, max_chunks + 1))
    cuts = np.sort(rng.integers(0, n + 1, size=k - 1)) if k > 1 else np.array([], dtype=int)
    return np.concatenate([[0], cuts, [n]]).astype(int)


class TestChunkedContinuation:
    """lindley_waits_chunked is *bit-identical* to the monolithic kernel
    for any chunking — the invariant the streaming simulator rests on."""

    @given(_arrivals_and_services(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=150, deadline=None)
    def test_any_chunking_bit_identical(self, case, split_seed):
        arrivals, services, w0 = case
        n = arrivals.size
        whole = lindley_waits(arrivals, services, w0)
        rng = np.random.default_rng(split_seed)
        bounds = _chunk_bounds(rng, n)
        carry = None
        parts = []
        for a, b in zip(bounds[:-1], bounds[1:]):
            waits, carry = lindley_waits_chunked(
                arrivals[a:b], services[a:b], carry, initial_work=w0
            )
            parts.append(waits)
        chunked = np.concatenate(parts) if parts else np.empty(0)
        # Bit-for-bit, not approximately: the carry replays the same
        # float operations in the same order.
        assert chunked.tobytes() == whole.tobytes()

    def test_every_chunk_size_on_a_busy_stream(self):
        rng = np.random.default_rng(11)
        arrivals = np.cumsum(rng.exponential(0.01, 2000))
        services = rng.exponential(0.011, 2000)  # overloaded: deep backlog
        whole = lindley_waits(arrivals, services, 0.3)
        for chunk in (1, 7, 64, 1999, 2000, 5000):
            carry = None
            parts = []
            for a in range(0, 2000, chunk):
                waits, carry = lindley_waits_chunked(
                    arrivals[a : a + chunk],
                    services[a : a + chunk],
                    carry,
                    initial_work=0.3,
                )
                parts.append(waits)
            assert np.concatenate(parts).tobytes() == whole.tobytes()

    def test_empty_chunk_returns_carry_unchanged(self):
        waits, carry = lindley_waits_chunked([0.0, 1.0], [2.0, 2.0], None)
        waits2, carry2 = lindley_waits_chunked([], [], carry)
        assert waits2.size == 0
        assert carry2 is carry

    def test_first_chunk_matches_monolithic_and_carries(self):
        arrivals = [0.0, 1.0, 2.0, 3.0]
        services = [2.0, 2.0, 2.0, 2.0]
        waits, carry = lindley_waits_chunked(arrivals, services, None)
        np.testing.assert_array_equal(waits, lindley_waits(arrivals, services))
        assert isinstance(carry, LindleyCarry)
        assert carry.last_arrival == 3.0 and carry.last_service == 2.0

    def test_single_request_first_chunk_carry(self):
        waits, carry = lindley_waits_chunked([5.0], [1.5], None, initial_work=0.25)
        assert waits[0] == pytest.approx(0.25)
        assert carry.cumsum == 0.0
        assert carry.prefix_min == -0.25
        cont, _ = lindley_waits_chunked([5.1], [1.0], carry)
        assert cont[0] == lindley_waits([5.0, 5.1], [1.5, 1.0], 0.25)[1]

    def test_non_continuing_arrivals_rejected(self):
        _, carry = lindley_waits_chunked([10.0], [1.0], None)
        with pytest.raises(SimulationError):
            lindley_waits_chunked([9.0], [1.0], carry)

    def test_negative_initial_work_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits_chunked([0.0], [1.0], None, initial_work=-1.0)


class TestBusyFraction:
    def test_matches_utilisation_mm1(self):
        rng = np.random.default_rng(3)
        lam, mu = 50.0, 100.0
        n = 60_000
        arrivals = np.cumsum(rng.exponential(1.0 / lam, n))
        services = rng.exponential(1.0 / mu, n)
        horizon = arrivals[-1] - arrivals[0]
        rho_hat = busy_fraction(arrivals, services, horizon)
        assert rho_hat == pytest.approx(lam / mu, rel=0.05)

    def test_empty_stream_zero(self):
        assert busy_fraction([], [], 1.0) == 0.0

    def test_bad_horizon_rejected(self):
        with pytest.raises(SimulationError):
            busy_fraction([0.0], [1.0], 0.0)


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([0.0, 1.0], [1.0])

    def test_decreasing_arrivals_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([1.0, 0.5], [1.0, 1.0])

    def test_negative_service_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([0.0, 1.0], [1.0, -0.1])

    def test_negative_initial_work_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits([0.0], [1.0], initial_work=-1.0)

    def test_2d_input_rejected(self):
        with pytest.raises(SimulationError):
            lindley_waits(np.zeros((2, 2)), np.zeros((2, 2)))
