"""Unit tests for the simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import SimulationEngine


class TestClockAndScheduling:
    def test_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=42.0).now == 42.0

    def test_schedule_negative_delay_rejected(self):
        eng = SimulationEngine()
        with pytest.raises(SimulationError):
            eng.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        eng = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(9.0, lambda: None)

    def test_zero_delay_event_fires_at_now(self):
        eng = SimulationEngine(start_time=5.0)
        seen = []
        eng.schedule(0.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [5.0]


class TestRun:
    def test_events_fire_in_time_order(self):
        eng = SimulationEngine()
        order = []
        eng.schedule(3.0, lambda: order.append("late"))
        eng.schedule(1.0, lambda: order.append("early"))
        eng.schedule(2.0, lambda: order.append("mid"))
        fired = eng.run()
        assert fired == 3
        assert order == ["early", "mid", "late"]
        assert eng.now == 3.0

    def test_callbacks_can_schedule_more_events(self):
        eng = SimulationEngine()
        ticks = []

        def tick():
            ticks.append(eng.now)
            if len(ticks) < 5:
                eng.schedule(1.0, tick)

        eng.schedule(1.0, tick)
        eng.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_max_events_bounds_run(self):
        eng = SimulationEngine()
        for i in range(10):
            eng.schedule(float(i + 1), lambda: None)
        assert eng.run(max_events=4) == 4
        assert eng.pending == 6

    def test_run_until_stops_clock_at_target(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule(1.0, lambda: seen.append(1))
        eng.schedule(5.0, lambda: seen.append(5))
        fired = eng.run_until(3.0)
        assert fired == 1
        assert seen == [1]
        assert eng.now == 3.0
        # The t=5 event still fires on a later run.
        eng.run_until(10.0)
        assert seen == [1, 5]
        assert eng.now == 10.0

    def test_run_until_includes_boundary_events(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule(2.0, lambda: seen.append("boundary"))
        eng.run_until(2.0)
        assert seen == ["boundary"]

    def test_run_until_backwards_rejected(self):
        eng = SimulationEngine()
        eng.run_until(5.0)
        with pytest.raises(SimulationError):
            eng.run_until(4.0)

    def test_events_fired_counter(self):
        eng = SimulationEngine()
        for _ in range(3):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_fired == 3


class TestEvery:
    def test_periodic_callback_cadence(self):
        eng = SimulationEngine()
        times = []
        eng.every(2.0, lambda: times.append(eng.now))
        eng.run_until(9.0)
        assert times == [2.0, 4.0, 6.0, 8.0]

    def test_periodic_with_explicit_start(self):
        eng = SimulationEngine()
        times = []
        eng.every(2.0, lambda: times.append(eng.now), start=1.0)
        eng.run_until(6.0)
        assert times == [1.0, 3.0, 5.0]

    def test_stop_cancels_recurrence(self):
        eng = SimulationEngine()
        times = []
        stop = eng.every(1.0, lambda: times.append(eng.now))
        eng.run_until(3.0)
        stop()
        eng.run_until(10.0)
        assert times == [1.0, 2.0, 3.0]

    def test_stop_from_within_callback(self):
        eng = SimulationEngine()
        times = []
        holder = {}

        def cb():
            times.append(eng.now)
            if len(times) == 2:
                holder["stop"]()

        holder["stop"] = eng.every(1.0, cb)
        eng.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_nonpositive_period_rejected(self):
        eng = SimulationEngine()
        with pytest.raises(SimulationError):
            eng.every(0.0, lambda: None)


class TestReset:
    def test_reset_clears_state(self):
        eng = SimulationEngine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.schedule(9.0, lambda: None)
        eng.reset()
        assert eng.now == 0.0
        assert eng.pending == 0
        assert eng.events_fired == 0
