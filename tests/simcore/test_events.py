"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simcore.events import Event, EventQueue


def _noop():
    pass


class TestEvent:
    def test_cancel_marks_event(self):
        ev = Event(time=1.0, callback=_noop)
        assert not ev.cancelled
        ev.cancel()
        assert ev.cancelled

    def test_label_default_empty(self):
        assert Event(time=0.0, callback=_noop).label == ""


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        q.push(Event(time=3.0, callback=_noop, label="c"))
        q.push(Event(time=1.0, callback=_noop, label="a"))
        q.push(Event(time=2.0, callback=_noop, label="b"))
        assert [q.pop().label for _ in range(3)] == ["a", "b", "c"]

    def test_ties_pop_in_insertion_order(self):
        q = EventQueue()
        for name in "abcde":
            q.push(Event(time=5.0, callback=_noop, label=name))
        assert [q.pop().label for _ in range(5)] == list("abcde")

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_pop_skips_cancelled(self):
        q = EventQueue()
        first = q.push(Event(time=1.0, callback=_noop, label="first"))
        q.push(Event(time=2.0, callback=_noop, label="second"))
        first.cancel()
        assert q.pop().label == "second"
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(Event(time=1.0, callback=_noop))
        q.push(Event(time=4.0, callback=_noop))
        first.cancel()
        assert q.peek_time() == 4.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_live_count_excludes_cancelled(self):
        q = EventQueue()
        events = [q.push(Event(time=float(i), callback=_noop)) for i in range(4)]
        events[1].cancel()
        events[3].cancel()
        assert q.live_count() == 2
        assert len(q) == 4

    def test_bool_reflects_live_events(self):
        q = EventQueue()
        assert not q
        ev = q.push(Event(time=0.0, callback=_noop))
        assert q
        ev.cancel()
        assert not q

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.push(Event(time=0.0, callback=_noop))
        q.clear()
        assert len(q) == 0
        assert q.pop() is None

    def test_non_callable_callback_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(Event(time=0.0, callback="not callable"))
