"""Tests for unit conversion helpers."""

import numpy as np
import pytest

from repro import units


def test_ms_roundtrip():
    assert units.to_ms(units.ms(250.0)) == pytest.approx(250.0)


def test_us_roundtrip():
    assert units.to_us(units.us(17.0)) == pytest.approx(17.0)


def test_minutes_and_hours():
    assert units.minutes(2) == 120.0
    assert units.hours(1) == 3600.0


def test_gb_roundtrip():
    assert units.to_gb(units.gb(3.5)) == pytest.approx(3.5)


def test_kb_to_mb():
    assert units.kb(1024) == pytest.approx(1.0)


def test_mb_identity():
    assert units.mb(500) == 500.0


def test_vectorised_over_arrays():
    xs = np.array([1.0, 2.0, 4.0])
    np.testing.assert_allclose(units.ms(xs), xs / 1000.0)
    np.testing.assert_allclose(units.gb(xs), xs * 1024.0)


def test_ms_of_5_is_paper_threshold():
    # The paper's migration threshold: eps = 5 ms.
    assert units.ms(5) == pytest.approx(0.005)
