"""The clock seam: virtual replay time vs dilated wall time."""

import asyncio
import time

import pytest

from repro.controlplane.clock import Clock, VirtualClock, WallClock
from repro.errors import ControlPlaneError
from repro.simcore.engine import SimulationEngine


class TestVirtualClock:
    def test_advance_runs_engine_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("a"), "a")
        engine.schedule_at(15.0, lambda: fired.append("b"), "b")
        clock = VirtualClock(engine)
        clock.advance_to(10.0)
        assert fired == ["a"]
        assert clock.now() == 10.0
        clock.advance_to(20.0)
        assert fired == ["a", "b"]

    def test_advance_to_past_is_noop(self):
        engine = SimulationEngine()
        clock = VirtualClock(engine)
        clock.advance_to(10.0)
        # Asking for time already reached must not raise (the loop's
        # compute re-asserts the window boundary after the clock).
        clock.advance_to(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0

    def test_wait_until_is_instant(self):
        engine = SimulationEngine()
        clock = VirtualClock(engine)
        t0 = time.monotonic()
        asyncio.run(clock.wait_until(1e6))
        assert time.monotonic() - t0 < 1.0
        assert clock.now() == 1e6


class TestWallClock:
    def test_dilation_must_be_positive(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ControlPlaneError):
                WallClock(dilation=bad)

    def test_now_starts_at_origin(self):
        clock = WallClock(origin=300.0, dilation=1.0)
        assert clock.now() == pytest.approx(300.0, abs=0.2)

    def test_dilation_scales_sim_time(self):
        clock = WallClock(origin=0.0, dilation=1000.0)
        time.sleep(0.05)
        # 50 ms of wall time is ~50 sim seconds at 1000x.
        assert 10.0 < clock.now() < 500.0

    def test_advance_to_blocks_until_target(self):
        clock = WallClock(origin=0.0, dilation=100.0)
        t0 = time.monotonic()
        clock.advance_to(5.0)  # 5 sim s = 50 ms wall
        elapsed = time.monotonic() - t0
        assert elapsed >= 0.02
        assert clock.now() >= 5.0

    def test_advance_to_past_returns_immediately(self):
        clock = WallClock(origin=100.0, dilation=1.0)
        t0 = time.monotonic()
        clock.advance_to(50.0)
        assert time.monotonic() - t0 < 0.5

    def test_wait_until_async(self):
        clock = WallClock(origin=0.0, dilation=100.0)
        asyncio.run(clock.wait_until(2.0))
        assert clock.now() >= 2.0

    def test_engine_free(self):
        # The loop advances the environment itself under a wall clock.
        assert WallClock().engine is None


class TestClockContract:
    def test_abstract_interface(self):
        with pytest.raises(TypeError):
            Clock()  # type: ignore[abstract]
