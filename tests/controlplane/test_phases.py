"""The four control-plane phases, driven against a real small world."""

import dataclasses

import numpy as np
import pytest

from repro.baselines.policies import BasicPolicy
from repro.controlplane.loop import ControlLoop
from repro.controlplane.phases import (
    ActuatePhase,
    DecidePhase,
    MonitorPhase,
    PredictPhase,
)
from repro.errors import ControlPlaneError
from repro.experiments.fig6 import paper_pcs_policy
from repro.scenarios import get_scenario
from repro.sim.runner import ExperimentRunner


def _runner(**overrides):
    kwargs = dict(
        n_nodes=6, arrival_rate=30.0, interval_s=8.0, n_intervals=3,
        warmup_intervals=1, seed=0, n_profiling_conditions=6, scale=0.2,
    )
    kwargs.update(overrides)
    return ExperimentRunner(
        get_scenario("fanout-feed").runner_config(**kwargs)
    )


@pytest.fixture(scope="module")
def pcs_world():
    """A PCS world advanced through its first window (so the phases
    have a real outcome to chew on)."""
    runner = _runner()
    state = runner.setup(paper_pcs_policy())
    loop = ControlLoop(runner, state)
    outcome = loop.run_window(0)
    return runner, state, loop, outcome


class TestMonitorPhase:
    def test_observe_builds_full_snapshot(self, pcs_world):
        runner, state, loop, outcome = pcs_world
        snap = loop.monitor.observe(0, outcome)
        assert snap.interval == 0
        assert snap.n_requests == outcome.n_requests
        assert snap.service_arrival_rate == pytest.approx(
            outcome.n_requests / runner.config.interval_s
        )
        assert snap.node_totals.shape == (len(state.cluster.nodes), 4)
        assert set(snap.windows) == {
            c.name for c in state.service.components
        }

    def test_snapshot_is_immutable(self, pcs_world):
        _, _, loop, outcome = pcs_world
        snap = loop.monitor.observe(0, outcome)
        with pytest.raises(dataclasses.FrozenInstanceError):
            snap.interval = 7

    def test_replay_monitor_has_no_gauge(self, pcs_world):
        _, _, loop, _ = pcs_world
        assert loop.monitor.gauge is None
        # Feeding a gauge-less monitor is a silent no-op (replay path).
        loop.monitor.record_window(0.1, 0.05, 100)


class TestPredictPhase:
    def test_inputs_shapes(self, pcs_world):
        runner, state, loop, outcome = pcs_world
        snap = loop.monitor.observe(0, outcome)
        inputs = loop.predict.inputs(snap)
        n = len(state.service.components)
        assert inputs.demands.shape == (n, 4)
        assert inputs.arrival_rates.shape == (n,)
        assert (inputs.arrival_rates >= 0).all()
        assert inputs.node_totals.shape == snap.node_totals.shape

    def test_retrain_disabled_in_replay(self, pcs_world):
        _, _, loop, _ = pcs_world
        assert loop.predict.retrain_every == 0
        assert not loop.predict.retrain_due()
        assert loop.predict.refresh() is None

    def test_negative_retrain_cadence_rejected(self, pcs_world):
        runner, state, _, _ = pcs_world
        with pytest.raises(ControlPlaneError):
            PredictPhase(
                state.service, state.cluster, state.classes, 8.0, 4,
                np.zeros(1, dtype=int), retrain_every=-1,
            )


class TestDecidePhase:
    def test_counts_decisions(self, pcs_world):
        _, _, loop, outcome = pcs_world
        # run_window(0) already fired one decision (interval 0 of 3).
        assert loop.decide.active
        assert loop.decide.n_decisions == 1
        assert loop.decide.last_outcome is not None
        summary = loop.decide.last_outcome.summary()
        assert set(summary) >= {
            "n_migrations", "initial_overall_s", "final_overall_s",
            "total_time_s",
        }

    def test_inert_phase_raises(self):
        phase = DecidePhase(None)
        assert not phase.active
        with pytest.raises(ControlPlaneError, match="inert"):
            phase.decide(None)

    def test_rebind_pcs_scheduler(self, pcs_world):
        _, state, loop, _ = pcs_world
        scheduler = loop.decide.scheduler
        inner = (
            scheduler._inner if hasattr(scheduler, "_inner") else scheduler
        )
        old = inner.predictor
        sentinel = object()
        loop.decide.rebind_predictor(sentinel)
        try:
            assert inner.predictor is sentinel
        finally:
            loop.decide.rebind_predictor(old)

    def test_rebind_on_inert_phase_is_noop(self):
        DecidePhase(None).rebind_predictor(object())


class TestActuatePhase:
    def test_inert_phase_raises(self):
        phase = ActuatePhase(None)
        with pytest.raises(ControlPlaneError, match="inert"):
            phase.apply(None)
        assert phase.enforced == 0

    def test_tracks_enforced_total(self, pcs_world):
        _, state, loop, _ = pcs_world
        assert loop.actuate.enforced == state.executor.enforced


class TestNonSchedulingPolicy:
    def test_basic_policy_builds_inert_phases(self):
        runner = _runner()
        state = runner.setup(BasicPolicy())
        loop = ControlLoop(runner, state)
        assert not loop.decide.active
        assert loop.actuate.executor is None
