"""The live service layer: config validation, HTTP routing, and one
full in-process boot → poll → sweep → shutdown session."""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.controlplane.http import _route
from repro.controlplane.service import (
    LiveControlPlane,
    ServeConfig,
    SweepManager,
)
from repro.errors import ConfigurationError


class TestServeConfigValidation:
    """Satellite of the RunnerConfig window checks: the serve-mode
    window length (and friends) get named ConfigurationErrors."""

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"window_s": 0.0}, "window_s"),
            ({"window_s": -2.0}, "window_s"),
            ({"window_s": float("nan")}, "window_s"),
            ({"arrival_rate": 0.0}, "arrival_rate"),
            ({"trace_cycle": 0}, "trace_cycle"),
            ({"dilation": 0.0}, "dilation"),
            ({"max_windows": 0}, "max_windows"),
            ({"retrain_every": -1}, "retrain_every"),
            ({"history_limit": 0}, "history_limit"),
            ({"port": 70000}, "port"),
        ],
    )
    def test_named_configuration_errors(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            ServeConfig(**kwargs)

    def test_defaults_are_valid(self):
        cfg = ServeConfig()
        assert cfg.scenario == "fanout-feed"
        assert cfg.policy == "PCS"


class _StubPlane:
    """The duck-typed surface the router needs, without a simulation."""

    def __init__(self):
        self.sweeps = SweepManager()
        self.shutdowns = 0

    def status_payload(self):
        return {"status": "running"}

    def metrics_text(self):
        return "pcs_up 1\n"

    def request_shutdown(self):
        self.shutdowns += 1


def _parse(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


class TestRouting:
    def setup_method(self):
        self.plane = _StubPlane()

    def _req(self, method, path, body=b""):
        return _parse(_route(self.plane, method, path, body))

    def test_status(self):
        status, body = self._req("GET", "/status")
        assert status == 200
        assert json.loads(body) == {"status": "running"}

    def test_metrics(self):
        status, body = self._req("GET", "/metrics")
        assert status == 200
        assert b"pcs_up 1" in body

    def test_scenarios_catalog(self):
        status, body = self._req("GET", "/scenarios")
        assert status == 200
        names = [s["name"] for s in json.loads(body)["scenarios"]]
        assert "fanout-feed" in names and "nutch-search" in names

    def test_unknown_route_404(self):
        status, body = self._req("GET", "/nope")
        assert status == 404
        assert b"/status" in body  # the error lists the routes

    def test_wrong_method_405(self):
        assert self._req("POST", "/status")[0] == 405
        assert self._req("GET", "/shutdown")[0] == 405

    def test_shutdown_flips_event(self):
        status, _ = self._req("POST", "/shutdown")
        assert status == 200
        assert self.plane.shutdowns == 1

    def test_sweep_bad_json_400(self):
        status, body = self._req("POST", "/sweeps", b"{nope")
        assert status == 400
        assert b"JSON" in body

    def test_sweep_unknown_key_400(self):
        status, body = self._req(
            "POST", "/sweeps", json.dumps({"bogus": 1}).encode()
        )
        assert status == 400
        assert b"bogus" in body

    def test_sweep_unknown_id_404(self):
        assert self._req("POST", "/sweeps/sweep-99/stop")[0] == 404

    def test_sweeps_listing_empty(self):
        status, body = self._req("GET", "/sweeps")
        assert status == 200
        assert json.loads(body) == {"sweeps": []}


class TestSweepManager:
    def test_runs_a_grid_to_done(self):
        manager = SweepManager()
        job = manager.start({
            "scenario": "fanout-feed",
            "policies": ["Basic"],
            "rates": [20.0],
            "seeds": [0],
            "intervals": 2,
            "warmup_intervals": 0,
            "window_s": 4.0,
            "scale": 0.2,
            "n_nodes": 6,
        })
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            state = manager.get(job["id"])
            if state["status"] != "running":
                break
            time.sleep(0.1)
        assert state["status"] == "done"
        assert state["done"] == state["total"] == 1
        assert len(state["results"]) == 1
        assert "Basic" in state["results"][0]

    def test_distributed_without_spool_rejected(self):
        with pytest.raises(ConfigurationError, match="spool"):
            SweepManager().start({"backend": "distributed"})

    def test_stop_unknown_job(self):
        with pytest.raises(KeyError):
            SweepManager().stop("sweep-1")

    def test_failure_is_surfaced_not_raised(self):
        manager = SweepManager()
        # 2 nodes cannot host the full Nutch topology -> CapacityError
        # inside the sweep, reported on the job, never thrown at HTTP.
        job = manager.start({
            "scenario": "nutch-search",
            "policies": ["Basic"],
            "rates": [20.0],
            "intervals": 2,
            "warmup_intervals": 0,
            "n_nodes": 2,
        })
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            state = manager.get(job["id"])
            if state["status"] != "running":
                break
            time.sleep(0.1)
        assert state["status"] == "failed"
        assert "error" in state


class TestLiveSession:
    """One real session on an ephemeral port: boot, poll /status and
    /metrics until the loop decides, then a clean shutdown."""

    CONFIG = ServeConfig(
        scenario="fanout-feed", policy="PCS", arrival_rate=25.0,
        window_s=4.0, seed=0, trace_profile="burst", trace_cycle=4,
        port=0, dilation=400.0, n_profiling_conditions=6, scale=0.2,
        n_nodes=6,
    )

    def _boot(self):
        plane = LiveControlPlane(self.CONFIG)
        thread = threading.Thread(
            target=lambda: asyncio.run(plane.run()), daemon=True
        )
        thread.start()
        assert plane.ready.wait(30), "HTTP surface never bound"
        return plane, thread

    def _get(self, plane, path):
        url = f"http://127.0.0.1:{plane.bound_port}{path}"
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.read().decode()

    def _post(self, plane, path):
        url = f"http://127.0.0.1:{plane.bound_port}{path}"
        req = urllib.request.Request(url, data=b"", method="POST")
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.read().decode()

    def test_boot_poll_decide_shutdown(self):
        plane, thread = self._boot()
        try:
            deadline = time.monotonic() + 90
            status = {}
            while time.monotonic() < deadline:
                status = json.loads(self._get(plane, "/status"))
                if status.get("loop", {}).get("n_decisions", 0) >= 1:
                    break
                time.sleep(0.25)
            assert status["status"] == "running"
            assert status["loop"]["n_decisions"] >= 1
            assert status["loop"]["n_requests"] > 0
            metrics = self._get(plane, "/metrics")
            assert "pcs_window_p99_seconds" in metrics
            assert "pcs_decisions_total" in metrics
        finally:
            self._post(plane, "/shutdown")
            thread.join(30)
        assert not thread.is_alive()
        assert plane.status in ("stopped", "drained")
