"""The composed loop: replay identity across every built-in scenario,
plus the live-mode behaviours the batch path must never exhibit."""

import pytest

from repro.baselines.policies import BasicPolicy
from repro.controlplane import ControlLoop, VirtualClock
from repro.errors import ControlPlaneError
from repro.experiments.fig6 import paper_pcs_policy
from repro.scenarios import get_scenario, scenario_names
from repro.sim.runner import ExperimentRunner

#: Per-scenario shape shrink so the full identity matrix stays quick.
SCALES = {
    "nutch-search": 1.0,
    "pipeline-deep": 0.5,
    "fanout-feed": 0.2,
    "diamond-search": 0.5,
    "branchy-api": 0.5,
    "mixed-frontend": 0.5,
}


def _runner(scenario, **overrides):
    kwargs = dict(
        n_nodes=8, arrival_rate=30.0, interval_s=8.0, n_intervals=3,
        warmup_intervals=1, seed=0, n_profiling_conditions=6,
        scale=SCALES[scenario],
    )
    if scenario == "nutch-search":
        from repro.service.nutch import NutchConfig

        kwargs["nutch"] = NutchConfig(
            n_search_groups=3, replicas_per_group=2,
            n_segmenters=1, n_aggregators=1,
        )
    kwargs.update(overrides)
    return ExperimentRunner(get_scenario(scenario).runner_config(**kwargs))


class TestReplayIdentity:
    """The refactor's acceptance bar: an explicitly constructed
    ControlLoop on a VirtualClock is byte-identical to
    ``ExperimentRunner.run`` for all six built-in scenarios."""

    def test_scale_table_covers_the_catalog(self):
        assert sorted(SCALES) == scenario_names()

    @pytest.mark.parametrize("scenario", sorted(SCALES))
    def test_loop_matches_runner_bit_for_bit(self, scenario):
        baseline = _runner(scenario).run(BasicPolicy())
        runner = _runner(scenario)
        state = runner.setup(BasicPolicy())
        loop = ControlLoop(runner, state, clock=VirtualClock(state.engine))
        assert loop.run().metrics_dict() == baseline.metrics_dict()

    def test_identity_holds_with_pcs_decisions(self):
        scenario = "fanout-feed"
        baseline = _runner(scenario).run(paper_pcs_policy())
        runner = _runner(scenario)
        state = runner.setup(paper_pcs_policy())
        loop = ControlLoop(runner, state, clock=VirtualClock(state.engine))
        result = loop.run()
        assert result.metrics_dict() == baseline.metrics_dict()
        assert result.n_migrations == baseline.n_migrations
        assert loop.decide.n_decisions == runner.config.n_intervals - 1

    def test_window_end_time(self):
        runner = _runner("fanout-feed")
        state = runner.setup(BasicPolicy())
        loop = ControlLoop(runner, state)
        cfg = runner.config
        assert loop.window_end_time(0) == cfg.churn_prewarm_s + cfg.interval_s
        assert loop.window_end_time(2) == (
            cfg.churn_prewarm_s + 3 * cfg.interval_s
        )

    def test_runner_facade_reuses_one_loop(self):
        runner = _runner("fanout-feed")
        state = runner.setup(BasicPolicy())
        loop = runner.control_loop(state)
        assert runner.control_loop(state) is loop

    def test_async_window_equals_sync(self):
        import asyncio

        baseline = _runner("fanout-feed").run(BasicPolicy())
        runner = _runner("fanout-feed")
        state = runner.setup(BasicPolicy())
        loop = ControlLoop(runner, state, clock=VirtualClock(state.engine))

        async def drive():
            for interval in range(runner.config.n_intervals):
                await loop.run_window_async(interval)

        asyncio.run(drive())
        assert loop.collect().metrics_dict() == baseline.metrics_dict()


class TestLiveMode:
    def _live_loop(self, policy=None, **kwargs):
        runner = _runner(
            "fanout-feed", warmup_intervals=0, summary_mode="streaming",
            trace_profile="burst", n_intervals=4,
        )
        state = runner.setup(policy if policy is not None else paper_pcs_policy())
        defaults = dict(live=True, history_limit=3)
        defaults.update(kwargs)
        return runner, state, ControlLoop(runner, state, **defaults)

    def test_decides_after_every_window(self):
        runner, state, loop = self._live_loop()
        for interval in range(4):
            loop.run_window(interval)
        # Replay skips the post-final decision; a live stream has no
        # final window and decides after every one.
        assert loop.decide.n_decisions == 4
        assert loop.windows_completed == 4

    def test_gauge_engaged_and_history_bounded(self):
        runner, state, loop = self._live_loop()
        for interval in range(5):
            loop.run_window(interval)
        assert loop.monitor.gauge is not None
        assert loop.monitor.gauge.windows == 5
        assert len(state.per_interval_p99) <= 3
        assert len(state.per_interval_mean) <= 3

    def test_windows_run_past_the_trace_cycle(self):
        # Interval 5 of a 4-window cycle replays the profile cyclically
        # instead of raising (the replay path would IndexError).
        runner, state, loop = self._live_loop()
        for interval in range(6):
            loop.run_window(interval)
        assert loop.windows_completed == 6

    def test_rolling_retrain_rebinds_predictor(self):
        runner, state, loop = self._live_loop(retrain_every=2)
        scheduler = loop.decide.scheduler
        inner = (
            scheduler._inner if hasattr(scheduler, "_inner") else scheduler
        )
        before = inner.predictor
        # MIN_RETRAIN_SAMPLES=8 per class; cadence 2 → first refresh
        # lands on window 8.
        for interval in range(9):
            loop.run_window(interval)
        assert loop.predict.n_retrains >= 1
        assert inner.predictor is not before

    def test_summary_is_json_shaped(self):
        import json

        runner, state, loop = self._live_loop()
        loop.run_window(0)
        summary = loop.summary()
        json.dumps(summary)  # must be serialisable as-is
        assert summary["windows_completed"] == 1
        assert summary["n_decisions"] == 1
        assert summary["n_requests"] > 0
        assert summary["last_window_p99_s"] > 0
        assert summary["last_decision"] is not None

    def test_bad_history_limit_rejected(self):
        runner = _runner("fanout-feed")
        state = runner.setup(BasicPolicy())
        with pytest.raises(ControlPlaneError, match="history_limit"):
            ControlLoop(runner, state, history_limit=0)
