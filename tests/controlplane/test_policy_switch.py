"""Live policy switching: ``ControlLoop.switch_policy`` between
windows, the ``POST /policy`` HTTP surface, and one real serve session
swapping its routing policy mid-run."""

import asyncio
import json
import threading
import time
import urllib.request

import pytest

from repro.baselines.policies import (
    AdaptiveReissuePolicy,
    BasicPolicy,
    REDPolicy,
    ReissuePolicy,
)
from repro.controlplane import ControlLoop
from repro.controlplane.http import _route
from repro.controlplane.service import LiveControlPlane, ServeConfig, SweepManager
from repro.errors import ConfigurationError, ControlPlaneError
from repro.experiments.fig6 import paper_pcs_policy
from repro.scenarios import get_scenario
from repro.sim.runner import ExperimentRunner


def _live_loop(policy=None, **kwargs):
    cfg = get_scenario("fanout-feed").runner_config(
        n_nodes=8, arrival_rate=30.0, interval_s=8.0, n_intervals=4,
        warmup_intervals=0, seed=0, n_profiling_conditions=6, scale=0.2,
        summary_mode="streaming", trace_profile="burst",
    )
    runner = ExperimentRunner(cfg)
    state = runner.setup(policy if policy is not None else BasicPolicy())
    defaults = dict(live=True, history_limit=3)
    defaults.update(kwargs)
    return runner, state, ControlLoop(runner, state, **defaults)


def _group_of(state, comp):
    return state.service.topology.stages[comp.stage_index].groups[
        comp.group_index
    ]


class TestLoopSwitch:
    def test_switch_swaps_policy_and_reapplies_load(self):
        runner, state, loop = _live_loop(BasicPolicy())
        loop.run_window(0)
        before = {c.name: c.load_rps for c in state.service.components}
        loop.switch_policy(REDPolicy(replicas=3))
        assert state.policy == REDPolicy(replicas=3)
        induced = REDPolicy(replicas=3).induced_load()
        for comp in state.service.components:
            group = _group_of(state, comp)
            assert comp.load_rps == induced.replica_rate(
                runner.config.arrival_rate, group.participation,
                group.n_replicas,
            )
            if group.n_replicas > 1:
                assert comp.load_rps > before[comp.name]
        # The loop keeps running under the new policy.
        loop.run_window(1)
        assert loop.windows_completed == 2

    def test_summary_reports_active_policy(self):
        runner, state, loop = _live_loop(BasicPolicy())
        loop.run_window(0)
        assert loop.summary()["active_policy"] == "Basic"
        loop.switch_policy(ReissuePolicy(quantile=0.95))
        assert loop.summary()["active_policy"] == "RI-95"

    def test_switch_to_adaptive_creates_a_fresh_feed(self):
        runner, state, loop = _live_loop(BasicPolicy())
        assert state.threshold_feed is None
        assert loop.summary()["adaptive_threshold_s"] is None
        loop.switch_policy(AdaptiveReissuePolicy(quantile=0.90))
        assert state.threshold_feed is not None
        assert state.threshold_feed.observations == 0
        loop.run_window(0)
        # The window populated the feed and /status surfaces the timer.
        assert state.threshold_feed.observations > 0
        assert loop.summary()["adaptive_threshold_s"] > 0
        assert loop.monitor.adaptive_threshold_s() > 0

    def test_switch_away_from_adaptive_drops_the_feed(self):
        runner, state, loop = _live_loop(AdaptiveReissuePolicy(quantile=0.9))
        loop.run_window(0)
        assert state.threshold_feed is not None
        loop.switch_policy(BasicPolicy())
        assert state.threshold_feed is None
        assert loop.summary()["adaptive_threshold_s"] is None

    def test_switch_between_adaptives_does_not_leak_stale_estimates(self):
        runner, state, loop = _live_loop(AdaptiveReissuePolicy(quantile=0.9))
        loop.run_window(0)
        old_feed = state.threshold_feed
        assert old_feed.observations > 0
        loop.switch_policy(AdaptiveReissuePolicy(quantile=0.99))
        assert state.threshold_feed is not old_feed
        assert state.threshold_feed.observations == 0

    def test_scheduling_policies_cannot_be_switched(self):
        runner, state, loop = _live_loop(BasicPolicy())
        with pytest.raises(ControlPlaneError, match="scheduling"):
            loop.switch_policy(paper_pcs_policy())
        # ...and not out of a scheduling run either.
        runner2, state2, loop2 = _live_loop(paper_pcs_policy())
        with pytest.raises(ControlPlaneError, match="scheduling"):
            loop2.switch_policy(BasicPolicy())

    def test_predict_phase_tracks_the_new_induced_load(self):
        runner, state, loop = _live_loop(BasicPolicy())
        assert loop.predict.induced_load == BasicPolicy().induced_load()
        loop.switch_policy(REDPolicy(replicas=3))
        assert loop.predict.induced_load == REDPolicy(
            replicas=3
        ).induced_load()


class _StubPlane:
    """The duck-typed surface POST /policy needs from the plane."""

    def __init__(self, fail=None):
        self.sweeps = SweepManager()
        self.switched = []
        self._fail = fail

    def status_payload(self):
        return {"status": "running"}

    def metrics_text(self):
        return ""

    def request_shutdown(self):
        pass

    def switch_policy(self, name):
        if self._fail is not None:
            raise self._fail
        self.switched.append(name)
        return {"ok": True, "active_policy": name}


def _parse(raw: bytes):
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


class TestHttpRoute:
    def _req(self, plane, method, path, body=b""):
        return _parse(_route(plane, method, path, body))

    def test_valid_switch(self):
        plane = _StubPlane()
        status, body = self._req(
            plane, "POST", "/policy", json.dumps({"policy": "RI-95"}).encode()
        )
        assert status == 200
        assert json.loads(body)["active_policy"] == "RI-95"
        assert plane.switched == ["RI-95"]

    def test_get_is_405(self):
        assert self._req(_StubPlane(), "GET", "/policy")[0] == 405

    def test_bad_json_400(self):
        assert self._req(_StubPlane(), "POST", "/policy", b"{nope")[0] == 400

    def test_missing_key_400(self):
        status, body = self._req(
            plane := _StubPlane(), "POST", "/policy",
            json.dumps({"name": "RI-95"}).encode(),
        )
        assert status == 400 and b"policy" in body
        assert plane.switched == []

    def test_unknown_policy_maps_to_400(self):
        plane = _StubPlane(fail=ConfigurationError("unknown policy 'x'"))
        status, body = self._req(
            plane, "POST", "/policy", json.dumps({"policy": "x"}).encode()
        )
        assert status == 400 and b"unknown policy" in body

    def test_loop_not_running_maps_to_400(self):
        plane = _StubPlane(
            fail=ControlPlaneError("the live loop is not running yet")
        )
        status, body = self._req(
            plane, "POST", "/policy",
            json.dumps({"policy": "Basic"}).encode(),
        )
        assert status == 400 and b"not running" in body

    def test_404_lists_the_policy_route(self):
        status, body = self._req(_StubPlane(), "GET", "/nope")
        assert status == 404 and b"/policy" in body


class TestPlaneGuards:
    def test_switch_before_boot_rejected(self):
        plane = LiveControlPlane(ServeConfig(policy="Basic"))
        with pytest.raises(ControlPlaneError, match="not running"):
            plane.switch_policy("RI-95")

    def test_unknown_name_rejected_before_touching_the_loop(self):
        plane = LiveControlPlane(ServeConfig(policy="Basic"))
        with pytest.raises(ConfigurationError, match="unknown policy"):
            plane.switch_policy("NOPE-9")


class TestLiveSessionSwitch:
    """One real serve session: boot on Basic, swap to ARI-90 over
    HTTP, and watch /status report the new policy and its tuned
    threshold."""

    CONFIG = ServeConfig(
        scenario="fanout-feed", policy="Basic", arrival_rate=25.0,
        window_s=4.0, seed=0, port=0, dilation=400.0,
        n_profiling_conditions=6, scale=0.2, n_nodes=6,
    )

    def _boot(self):
        plane = LiveControlPlane(self.CONFIG)
        thread = threading.Thread(
            target=lambda: asyncio.run(plane.run()), daemon=True
        )
        thread.start()
        assert plane.ready.wait(30), "HTTP surface never bound"
        return plane, thread

    def _call(self, plane, path, data=None):
        url = f"http://127.0.0.1:{plane.bound_port}{path}"
        req = urllib.request.Request(
            url, data=data, method="GET" if data is None else "POST"
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            return json.loads(resp.read().decode())

    def test_switch_over_http(self):
        plane, thread = self._boot()
        try:
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                status = self._call(plane, "/status")
                if status.get("loop", {}).get("windows_completed", 0) >= 1:
                    break
                time.sleep(0.25)
            assert status["active_policy"] == "Basic"
            reply = self._call(
                plane, "/policy", json.dumps({"policy": "ARI-90"}).encode()
            )
            assert reply["ok"] is True
            assert reply["active_policy"] == "ARI-90"
            assert reply["adapts_threshold"] is True
            # The next window routes (and reports) under the new policy.
            deadline = time.monotonic() + 90
            while time.monotonic() < deadline:
                status = self._call(plane, "/status")
                if status["loop"].get("adaptive_threshold_s") is not None:
                    break
                time.sleep(0.25)
            assert status["active_policy"] == "ARI-90"
            assert status["loop"]["active_policy"] == "ARI-90"
            assert status["loop"]["adaptive_threshold_s"] > 0
        finally:
            self._call(plane, "/shutdown", data=b"")
            thread.join(30)
        assert not thread.is_alive()
