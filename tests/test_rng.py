"""Tests for the named RNG stream registry."""

import numpy as np
import pytest

from repro.rng import RngRegistry, stable_name_key


class TestStableNameKey:
    def test_deterministic(self):
        assert stable_name_key("abc") == stable_name_key("abc")

    def test_distinct_names_distinct_keys(self):
        names = [f"stream-{i}" for i in range(100)]
        keys = {stable_name_key(n) for n in names}
        assert len(keys) == 100

    def test_fits_in_64_bits(self):
        assert 0 <= stable_name_key("x") < 2**64


class TestRngRegistry:
    def test_same_name_same_generator_object(self):
        reg = RngRegistry(seed=1)
        assert reg.get("a") is reg.get("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(seed=99).get("arrivals").random(10)
        b = RngRegistry(seed=99).get("arrivals").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_names_are_independent(self):
        reg = RngRegistry(seed=0)
        a = reg.get("a").random(1000)
        b = reg.get("b").random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(seed=5)
        r1.get("x")
        x_then_y = r1.get("y").random(5)
        r2 = RngRegistry(seed=5)
        y_only = r2.get("y").random(5)
        np.testing.assert_array_equal(x_then_y, y_only)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).get("s").random(20)
        b = RngRegistry(seed=2).get("s").random(20)
        assert not np.array_equal(a, b)

    def test_fork_equivalent_to_indexed_name(self):
        reg1 = RngRegistry(seed=3)
        reg2 = RngRegistry(seed=3)
        np.testing.assert_array_equal(
            reg1.fork("comp", 4).random(8), reg2.get("comp[4]").random(8)
        )

    def test_fork_negative_index_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(seed=0).fork("comp", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(seed=0).get("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="zero")

    def test_reset_restarts_streams(self):
        reg = RngRegistry(seed=7)
        first = reg.get("s").random(4)
        reg.reset()
        second = reg.get("s").random(4)
        np.testing.assert_array_equal(first, second)

    def test_contains_len_names(self):
        reg = RngRegistry(seed=0)
        reg.get("b")
        reg.get("a")
        assert "a" in reg and "b" in reg and "c" not in reg
        assert len(reg) == 2
        assert list(reg.names()) == ["a", "b"]
