"""Tests for the sweep-analysis helpers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.analysis import (
    crossover_rate,
    dominance_table,
    pcs_convergence,
    summary_crossover_rate,
    summary_dominance_table,
)
from repro.sim.aggregate import SweepSummary
from repro.sim.metrics import LatencySummary
from repro.sim.runner import PolicyResult


def _result(name, rate, p99, mean, per_interval=None):
    summary = LatencySummary(n=100, mean=mean, p50=mean, p95=p99, p99=p99, max=p99)
    overall = LatencySummary(n=100, mean=mean, p50=mean, p95=p99, p99=p99, max=p99)
    return PolicyResult(
        policy_name=name,
        arrival_rate=rate,
        component_latency=summary,
        overall_latency=overall,
        per_interval_component_p99=[p99],
        per_interval_overall_mean=per_interval or [mean],
        n_requests=100,
        n_migrations=0,
        scheduling_time_s=0.0,
        wall_time_s=0.0,
    )


def _sweep():
    # RED helps at 10, ties around 50, hurts at 200.
    return {
        10.0: {
            "Basic": _result("Basic", 10, 0.030, 0.025),
            "RED-3": _result("RED-3", 10, 0.012, 0.010),
            "PCS": _result("PCS", 10, 0.028, 0.022),
        },
        50.0: {
            "Basic": _result("Basic", 50, 0.040, 0.035),
            "RED-3": _result("RED-3", 50, 0.030, 0.028),
            "PCS": _result("PCS", 50, 0.033, 0.028),
        },
        200.0: {
            "Basic": _result("Basic", 200, 1.2, 0.70),
            "RED-3": _result("RED-3", 200, 9.8, 5.6),
            "PCS": _result("PCS", 200, 0.44, 0.25),
        },
    }


class TestCrossoverRate:
    def test_finds_crossover_between_samples(self):
        x = crossover_rate(_sweep(), "RED-3")
        assert 50.0 < x < 200.0

    def test_no_crossover_returns_none(self):
        x = crossover_rate(_sweep(), "PCS")
        assert x is None  # PCS always beats Basic here

    def test_never_helps_returns_lowest_rate(self):
        sweep = _sweep()
        for rate in sweep:
            sweep[rate]["BAD"] = _result("BAD", rate, 10.0, 9.0)
        assert crossover_rate(sweep, "BAD") == 10.0

    def test_missing_policy_rejected(self):
        with pytest.raises(ExperimentError):
            crossover_rate(_sweep(), "RI-90")

    def test_empty_sweep_rejected(self):
        with pytest.raises(ExperimentError):
            crossover_rate({}, "RED-3")


class TestDominanceTable:
    def test_winners_by_rate(self):
        out = dominance_table(_sweep())
        lines = out.splitlines()
        assert any("RED-3" in l for l in lines if l.startswith(" 10") or "10 " in l)
        assert any("PCS" in l for l in lines if "200" in l)

    def test_margin_at_least_one(self):
        out = dominance_table(_sweep())
        data_lines = [l for l in out.splitlines() if l.count("|") == 4 and "margin" not in l]
        margins = [
            float(line.rsplit("|", 1)[1].strip().rstrip("x"))
            for line in data_lines
        ]
        assert margins and all(m >= 1.0 for m in margins)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            dominance_table({})


def _summary() -> SweepSummary:
    """The synthetic sweep as a (single-seed) aggregate summary."""
    return SweepSummary.from_grouped(
        {
            (name, rate): {0: result}
            for rate, per_policy in _sweep().items()
            for name, result in per_policy.items()
        }
    )


class TestSummaryHelpers:
    """The multi-seed variants agree with the per-result originals."""

    def test_summary_crossover_matches_original(self):
        assert summary_crossover_rate(_summary(), "RED-3") == pytest.approx(
            crossover_rate(_sweep(), "RED-3")
        )
        assert summary_crossover_rate(_summary(), "PCS") is None

    def test_summary_dominance_table(self):
        out = summary_dominance_table(_summary())
        assert "seed-mean" in out
        assert any("PCS" in line for line in out.splitlines() if "200" in line)
        # Single-seed CIs collapse onto the mean.
        assert "CI" in out
        # The paired runner-up − best interval is tabulated too.
        assert "paired Δ (ms)" in out


class TestPCSConvergence:
    def test_improvement_computed(self):
        r = _result("PCS", 100, 0.05, 0.04, per_interval=[0.050, 0.040, 0.030])
        conv = pcs_convergence(r)
        assert conv["first_interval_mean_s"] == pytest.approx(0.050)
        assert conv["last_interval_mean_s"] == pytest.approx(0.030)
        assert conv["relative_improvement"] == pytest.approx(0.4)

    def test_single_interval_rejected(self):
        with pytest.raises(ExperimentError):
            pcs_convergence(_result("PCS", 100, 0.05, 0.04))

    def test_real_run_converges(self):
        """End-to-end: PCS's own interval series should not get worse."""
        from repro.experiments.fig6 import paper_pcs_policy
        from repro.service.nutch import NutchConfig
        from repro.sim.runner import ExperimentRunner, RunnerConfig

        runner = ExperimentRunner(
            RunnerConfig(
                n_nodes=10,
                arrival_rate=120.0,
                interval_s=20.0,
                n_intervals=6,
                warmup_intervals=1,
                seed=21,
                nutch=NutchConfig(n_search_groups=6, replicas_per_group=3,
                                  n_segmenters=2, n_aggregators=2),
                n_profiling_conditions=25,
            )
        )
        result = runner.run(paper_pcs_policy())
        conv = pcs_convergence(result)
        assert conv["relative_improvement"] > -0.5  # not diverging


class TestPredictedCrossover:
    """The analytic side of §VI-C: the M/G/1 + benefit-transform
    predictor derives the help→hurt crossover Fig. 6 measures."""

    @pytest.fixture(scope="class")
    def topology(self):
        from repro.service.nutch import NutchConfig, build_nutch_service

        return build_nutch_service(
            NutchConfig(
                n_search_groups=4, replicas_per_group=5,
                n_segmenters=2, n_aggregators=2,
            )
        ).topology

    def test_latency_positive_and_increasing_in_load(self, topology):
        from repro.baselines.policies import BasicPolicy
        from repro.experiments.analysis import predicted_latency_curve

        curve = predicted_latency_curve(
            topology, BasicPolicy(), (10.0, 50.0, 200.0)
        )
        vals = [curve[r] for r in (10.0, 50.0, 200.0)]
        assert all(v > 0 for v in vals)
        assert vals[0] < vals[1] < vals[2]

    def test_red_helps_light_hurts_heavy(self, topology):
        from repro.baselines.policies import BasicPolicy, REDPolicy
        from repro.experiments.analysis import predicted_policy_latency

        red, basic = REDPolicy(replicas=3), BasicPolicy()
        assert predicted_policy_latency(
            topology, red, 10.0
        ) < predicted_policy_latency(topology, basic, 10.0)
        assert predicted_policy_latency(
            topology, red, 500.0
        ) > predicted_policy_latency(topology, basic, 500.0)

    def test_crossover_found_inside_the_grid(self, topology):
        from repro.baselines.policies import REDPolicy
        from repro.experiments.analysis import predicted_crossover_rate

        rates = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0)
        x = predicted_crossover_rate(topology, REDPolicy(replicas=3), rates)
        assert x is not None and rates[0] < x < rates[-1]

    def test_heavier_redundancy_crosses_earlier(self, topology):
        from repro.baselines.policies import REDPolicy
        from repro.experiments.analysis import predicted_crossover_rate

        rates = tuple(float(r) for r in range(10, 520, 10))
        x3 = predicted_crossover_rate(topology, REDPolicy(replicas=3), rates)
        x5 = predicted_crossover_rate(topology, REDPolicy(replicas=5), rates)
        assert x5 < x3

    def test_reissue_is_conservative(self, topology):
        # RI-99 duplicates ~1% of sub-requests: it must still help (or
        # cross far later than RED) on the same grid.
        from repro.baselines.policies import REDPolicy, ReissuePolicy
        from repro.experiments.analysis import predicted_crossover_rate

        rates = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0)
        x_red = predicted_crossover_rate(topology, REDPolicy(replicas=3), rates)
        x_ri = predicted_crossover_rate(
            topology, ReissuePolicy(quantile=0.99), rates
        )
        assert x_ri is None or x_ri > x_red

    def test_participation_weighted_dag_topology_supported(self):
        from repro.baselines.policies import REDPolicy
        from repro.experiments.analysis import predicted_policy_latency
        from repro.scenarios import get_scenario

        spec = get_scenario("branchy-api")
        topo = spec.build_service(spec.runner_config()).topology
        assert predicted_policy_latency(topo, REDPolicy(replicas=5), 30.0) > 0

    def test_bad_inputs_rejected(self, topology):
        from repro.baselines.policies import BasicPolicy
        from repro.experiments.analysis import predicted_policy_latency

        with pytest.raises(ExperimentError, match="arrival_rate"):
            predicted_policy_latency(topology, BasicPolicy(), 0.0)
        with pytest.raises(ExperimentError, match="service_scale"):
            predicted_policy_latency(
                topology, BasicPolicy(), 10.0, service_scale=0.0
            )

    def test_service_scale_cancels_in_the_ratio_to_first_order(self, topology):
        # Crossovers are ratios; a modest uniform service inflation
        # must not move the predicted crossover much.
        from repro.baselines.policies import REDPolicy
        from repro.experiments.analysis import predicted_crossover_rate

        rates = tuple(float(r) for r in range(10, 520, 10))
        x1 = predicted_crossover_rate(topology, REDPolicy(replicas=3), rates)
        x2 = predicted_crossover_rate(
            topology, REDPolicy(replicas=3), rates, service_scale=1.2
        )
        assert x2 == pytest.approx(x1, rel=0.35)
