"""Tests for the text table/chart renderers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.report import format_ms, render_bars, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["policy", "p99"],
            [["Basic", "10.0"], ["PCS", "3.5"]],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "policy" in lines[1] and "p99" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # header/sep/rows align

    def test_width_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ExperimentError):
            render_table([], [])

    def test_no_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderBars:
    def test_bars_scale_with_values(self):
        out = render_bars({"small": 1.0, "big": 10.0}, width=20)
        small_line = next(l for l in out.splitlines() if l.startswith("small"))
        big_line = next(l for l in out.splitlines() if l.startswith("big"))
        assert big_line.count("#") > small_line.count("#")

    def test_log_scale_compresses(self):
        out_lin = render_bars({"a": 1.0, "b": 1000.0}, width=30)
        out_log = render_bars({"a": 1.0, "b": 1000.0}, width=30, log=True)
        a_lin = next(l for l in out_lin.splitlines() if l.startswith("a"))
        a_log = next(l for l in out_log.splitlines() if l.startswith("a"))
        assert a_log.count("#") > a_lin.count("#")

    def test_zero_value_gets_no_bar(self):
        out = render_bars({"z": 0.0, "x": 5.0})
        z_line = next(l for l in out.splitlines() if l.startswith("z"))
        assert "#" not in z_line

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            render_bars({})

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            render_bars({"a": -1.0})


def test_format_ms():
    assert format_ms(0.0123) == "12.30ms"
