"""Tests for the Fig. 6 and Fig. 7 experiment drivers."""

import numpy as np
import pytest

from repro.baselines.policies import BasicPolicy, REDPolicy, ReissuePolicy
from repro.errors import ExperimentError
from repro.experiments.fig6 import (
    Fig6Config,
    paper_pcs_policy,
    run_fig6,
)
from repro.experiments.fig7 import Fig7Config, make_instance, run_fig7
from repro.service.nutch import NutchConfig


@pytest.fixture(scope="module")
def small_fig6():
    cfg = Fig6Config(
        arrival_rates=(30.0, 150.0),
        n_nodes=10,
        n_intervals=5,
        warmup_intervals=1,
        seed=13,
        nutch=NutchConfig(
            n_search_groups=6, replicas_per_group=3,
            n_segmenters=2, n_aggregators=2,
        ),
        policies=(
            BasicPolicy(),
            REDPolicy(replicas=3),
            ReissuePolicy(quantile=0.90),
            paper_pcs_policy(),
        ),
    )
    return run_fig6(cfg)


class TestFig6:
    def test_all_cells_present(self, small_fig6):
        assert set(small_fig6.results) == {30.0, 150.0}
        for per_policy in small_fig6.results.values():
            assert set(per_policy) == {"Basic", "RED-3", "RI-90", "PCS"}

    def test_pcs_beats_basic_at_heavy_load(self, small_fig6):
        heavy = small_fig6.results[150.0]
        assert heavy["PCS"].overall_mean_s < heavy["Basic"].overall_mean_s
        assert heavy["PCS"].component_p99_s < heavy["Basic"].component_p99_s

    def test_red_crossover(self, small_fig6):
        """RED helps at light load, hurts at heavy load (paper §VI-C)."""
        light, heavy = small_fig6.results[30.0], small_fig6.results[150.0]
        assert light["RED-3"].overall_mean_s < light["Basic"].overall_mean_s
        assert heavy["RED-3"].overall_mean_s > heavy["Basic"].overall_mean_s

    def test_reissue_milder_than_red_at_heavy_load(self, small_fig6):
        heavy = small_fig6.results[150.0]
        assert heavy["RI-90"].overall_mean_s < heavy["RED-3"].overall_mean_s

    def test_latencies_grow_with_load(self, small_fig6):
        for name in ("Basic", "PCS"):
            assert (
                small_fig6.results[150.0][name].overall_mean_s
                > small_fig6.results[30.0][name].overall_mean_s
            )

    def test_reduction_aggregations(self, small_fig6):
        head = small_fig6.headline_reduction()
        pairs = small_fig6.reduction_vs_mitigation_techniques()
        assert set(head) == set(pairs) == {"tail", "mean"}
        # The headline aggregation (ratio of sweep-averaged latencies)
        # must favour PCS even on this 2-point mini sweep.
        assert head["tail"] > 0 and head["mean"] > 0
        # At the heavy point PCS must beat every mitigation technique.
        heavy = small_fig6.results[150.0]
        for name in ("RED-3", "RI-90"):
            assert heavy["PCS"].component_p99_s < heavy[name].component_p99_s

    def test_render_mentions_paper_numbers(self, small_fig6):
        out = small_fig6.render()
        assert "67.0" in out and "64.2" in out or "64.16" in out

    def test_invalid_config_rejected(self):
        with pytest.raises(ExperimentError):
            Fig6Config(arrival_rates=())
        with pytest.raises(ExperimentError):
            Fig6Config(arrival_rates=(0.0,))

    def test_default_policies_are_paper_legend(self):
        cfg = Fig6Config()
        assert [p.name for p in cfg.policies] == [
            "Basic", "RED-3", "RED-5", "RI-90", "RI-99", "PCS",
        ]


class TestFig6Aggregate:
    """The headline numbers route through repro.sim.aggregate."""

    def test_summary_attached(self, small_fig6):
        summary = small_fig6.seed_summary()
        assert summary.seeds == (13,)
        assert summary.policies() == ["Basic", "RED-3", "RI-90", "PCS"]
        assert summary.rates() == [30.0, 150.0]

    def test_single_seed_means_are_exact_run_values(self, small_fig6):
        summary = small_fig6.seed_summary()
        for rate, per_policy in small_fig6.results.items():
            for name, r in per_policy.items():
                assert (
                    summary.seed_mean(name, rate, "component_latency.p99")
                    == r.component_p99_s
                )
                assert (
                    summary.seed_mean(name, rate, "overall_latency.mean")
                    == r.overall_mean_s
                )

    def test_headline_matches_direct_formula(self, small_fig6):
        """Routing through the aggregate layer must not move a single
        bit of the single-seed headline numbers."""
        baselines = ["RED-3", "RI-90"]
        rates = sorted(small_fig6.results)
        pcs_tail = np.mean(
            [small_fig6.results[r]["PCS"].component_p99_s for r in rates]
        )
        other_tail = np.mean(
            [
                small_fig6.results[r][b].component_p99_s
                for r in rates
                for b in baselines
            ]
        )
        expected = float(100.0 * (1.0 - pcs_tail / other_tail))
        assert small_fig6.headline_reduction()["tail"] == expected

    def test_render_includes_aggregate_table(self, small_fig6):
        assert "Seed-level aggregate" in small_fig6.render()

    def test_multi_seed_run(self, tmp_path):
        cfg = Fig6Config(
            arrival_rates=(40.0,),
            n_nodes=8,
            n_intervals=4,
            warmup_intervals=1,
            seed=3,
            seeds=(3, 4),
            nutch=NutchConfig(
                n_search_groups=4, replicas_per_group=2,
                n_segmenters=1, n_aggregators=1,
            ),
            policies=(BasicPolicy(), REDPolicy(replicas=2)),
        )
        result = run_fig6(cfg, cache_dir=tmp_path)
        summary = result.seed_summary()
        assert summary.seeds == (3, 4)
        stats = summary.get("Basic", 40.0)["overall_latency.mean"]
        assert stats.n == 2 and stats.std > 0
        assert stats.t_lo < stats.mean < stats.t_hi
        # `results` is the first seed's slice.
        assert result.results[40.0]["Basic"].overall_mean_s in stats.values
        # The cache can regenerate the identical summary offline.
        from repro.sim.aggregate import SweepSummary

        assert SweepSummary.from_cache(tmp_path).to_dict() == summary.to_dict()

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            Fig6Config(seeds=(1, 1))


class TestFig6SweepRouting:
    """run_fig6 goes through the sweep subsystem: cached and resumable."""

    def _tiny_cfg(self):
        return Fig6Config(
            arrival_rates=(40.0,),
            n_nodes=8,
            n_intervals=4,
            warmup_intervals=1,
            seed=3,
            nutch=NutchConfig(
                n_search_groups=4, replicas_per_group=2,
                n_segmenters=1, n_aggregators=1,
            ),
            policies=(BasicPolicy(), REDPolicy(replicas=2)),
        )

    def test_sweep_spec_mirrors_config(self):
        cfg = self._tiny_cfg()
        spec = cfg.sweep_spec()
        assert spec.arrival_rates == cfg.arrival_rates
        assert spec.seeds == (cfg.seed,)
        assert [p.name for p in spec.policies] == ["Basic", "RED-2"]

    def test_cache_dir_resumes_identically(self, tmp_path):
        cfg = self._tiny_cfg()
        first = run_fig6(cfg, cache_dir=tmp_path)
        again = run_fig6(cfg, cache_dir=tmp_path)
        for rate in first.results:
            for name in first.results[rate]:
                assert (
                    again.results[rate][name].metrics_dict()
                    == first.results[rate][name].metrics_dict()
                )
        # Second run served everything from the memo (the extra file is
        # the provenance manifest, not a point).
        from repro.sim.sweep import SweepCache

        assert len(SweepCache(tmp_path)) == 2
        assert (tmp_path / "manifest.json").exists()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(
            Fig7Config(
                sizes=((20, 4), (40, 8), (80, 16)),
                repeats=2,
                hierarchical_sizes=((160, 16),),
                hierarchical_group_size=80,
            )
        )

    def test_all_points_measured(self, result):
        assert len(result.points) == 4
        assert sum(p.hierarchical for p in result.points) == 1

    def test_times_positive(self, result):
        for p in result.points:
            assert p.analysis_time_s > 0
            assert p.search_time_s >= 0

    def test_repeat_reduction_through_aggregate(self, result):
        # Flat points (repeats=2) carry the repeat spread; timings are
        # the per-phase noise floor, so spread is a plain std >= 0.
        for p in result.points:
            assert p.total_std_s >= 0.0
            assert isinstance(p.n_migrations, int)

    def test_growth_with_size(self, result):
        flat = [p for p in result.points if not p.hierarchical]
        assert flat[-1].analysis_time_s > flat[0].analysis_time_s

    def test_top_point_well_under_interval(self, result):
        # Paper: scheduling is < 0.1% of the 600 s interval.
        assert result.top_point().total_time_s < 0.01 * 600.0

    def test_render(self, result):
        out = result.render()
        assert "scalability" in out and "paper" in out

    def test_make_instance_valid(self):
        inputs = make_instance(30, 6, np.random.default_rng(0))
        assert inputs.m == 30 and inputs.k == 6

    def test_invalid_config_rejected(self):
        with pytest.raises(ExperimentError):
            Fig7Config(sizes=())
        with pytest.raises(ExperimentError):
            Fig7Config(repeats=0)


class TestPaperScalePresets:
    """Fig6Config(paper_scale=True) resolves the *scenario's* preset."""

    def test_nutch_preset_matches_paper_setup(self):
        cfg = Fig6Config(paper_scale=True)
        assert cfg.n_nodes == 30
        assert cfg.nutch.n_search_groups * cfg.nutch.replicas_per_group == 100

    @pytest.mark.parametrize(
        "scenario", ["pipeline-deep", "fanout-feed", "diamond-search", "branchy-api"]
    )
    def test_every_builtin_has_a_distinct_preset(self, scenario):
        from repro.scenarios import get_scenario

        cfg = Fig6Config(paper_scale=True, scenario=scenario)
        preset = get_scenario(scenario).paper_scale
        assert cfg.n_nodes == preset["n_nodes"]
        assert cfg.scale == preset["scale"]
        # The fix's whole point: not the Nutch 30-node constant.
        assert (cfg.n_nodes, cfg.scale) != (30, 1.0)

    def test_explicit_arguments_beat_the_preset(self):
        cfg = Fig6Config(paper_scale=True, scenario="pipeline-deep", n_nodes=7)
        assert cfg.n_nodes == 7
        assert cfg.scale == 3.0  # untouched fields still take the preset

    def test_presetless_scenario_raises_named_error(self):
        from repro.errors import ConfigurationError
        from repro.scenarios import ScenarioSpec, register_scenario

        register_scenario(
            ScenarioSpec(
                name="fig6-no-preset", description="d", build=lambda c: None
            ),
            replace_existing=True,
        )
        with pytest.raises(
            ConfigurationError, match="fig6-no-preset.*paper-scale preset"
        ):
            Fig6Config(paper_scale=True, scenario="fig6-no-preset")

    def test_bogus_preset_key_rejected(self):
        from repro.errors import ConfigurationError
        from repro.scenarios import ScenarioSpec, register_scenario

        register_scenario(
            ScenarioSpec(
                name="fig6-bad-preset", description="d", build=lambda c: None,
                paper_scale={"warp_factor": 9},
            ),
            replace_existing=True,
        )
        with pytest.raises(ConfigurationError, match="warp_factor"):
            Fig6Config(paper_scale=True, scenario="fig6-bad-preset")

    def test_quick_scale_never_touches_presets(self):
        a = Fig6Config(scenario="pipeline-deep")
        assert a.n_nodes == 12  # the scenario's quick default, not 36
        assert not a.paper_scale

    def test_explicitly_passed_default_value_beats_preset(self):
        """Sentinel defaults: scale=1.0 passed explicitly must survive
        paper_scale even though 1.0 is also the resolved default."""
        cfg = Fig6Config(paper_scale=True, scenario="pipeline-deep", scale=1.0)
        assert cfg.scale == 1.0
        assert cfg.n_nodes == 36  # untouched field still takes the preset
        nutch = NutchConfig(n_search_groups=20, replicas_per_group=5)
        cfg = Fig6Config(paper_scale=True, nutch=nutch)
        assert cfg.nutch == nutch

    def test_unset_scale_and_nutch_resolve_to_defaults(self):
        cfg = Fig6Config()
        assert cfg.scale == 1.0
        assert cfg.nutch == NutchConfig()

    def test_non_sentinel_field_preset_key_rejected(self):
        """Preset keys are restricted to the None-sentinel fields where
        'left unset' is detectable — a key like `seed` could silently
        override an explicitly passed default-equal value."""
        from repro.errors import ConfigurationError
        from repro.scenarios import ScenarioSpec, register_scenario

        register_scenario(
            ScenarioSpec(
                name="fig6-seed-preset", description="d", build=lambda c: None,
                paper_scale={"seed": 7},
            ),
            replace_existing=True,
        )
        with pytest.raises(ConfigurationError, match="not presettable"):
            Fig6Config(paper_scale=True, scenario="fig6-seed-preset")
