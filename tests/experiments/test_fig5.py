"""Tests for the Fig. 5 experiment driver (paper-shape checks)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.fig5 import (
    PAPER_FIG5,
    Fig5Config,
    run_fig5,
)


@pytest.fixture(scope="module")
def result():
    # Slightly reduced grid for test speed; same structure.
    return run_fig5(Fig5Config(n_hadoop_sizes=10, n_spark_sizes=6, seed=1))


class TestStructure:
    def test_case_count(self, result):
        assert len(result.cases) == 3 * 10 + 3 * 6

    def test_all_six_workloads_covered(self, result):
        assert len(result.per_workload_mape()) == 6

    def test_errors_positive_finite(self, result):
        assert np.all(np.isfinite(result.errors))
        assert np.all(result.errors >= 0)


class TestPaperShape:
    def test_mean_error_near_paper(self, result):
        # Paper: 2.68 %.  Accept the same order of magnitude.
        assert result.mape < 2 * PAPER_FIG5["mape"]

    def test_bucket_fractions_at_least_paper_like(self, result):
        buckets = result.buckets
        assert buckets[3.0] >= 0.5
        assert buckets[5.0] >= 0.75
        assert buckets[8.0] >= 0.9

    def test_buckets_monotone(self, result):
        b = result.buckets
        assert b[3.0] <= b[5.0] <= b[8.0]

    def test_render_compares_to_paper(self, result):
        out = result.render()
        assert "2.68" in out  # paper number shown alongside
        assert "hadoop.wordcount" in out


class TestConfig:
    def test_full_grid_is_paper_grid(self):
        cfg = Fig5Config()
        assert cfg.n_hadoop_sizes == 20 and cfg.n_spark_sizes == 10

    def test_invalid_config_rejected(self):
        with pytest.raises(ExperimentError):
            Fig5Config(n_hadoop_sizes=1)
        with pytest.raises(ExperimentError):
            Fig5Config(train_windows=0)

    def test_seed_changes_cases(self):
        a = run_fig5(Fig5Config(n_hadoop_sizes=3, n_spark_sizes=2, seed=1))
        b = run_fig5(Fig5Config(n_hadoop_sizes=3, n_spark_sizes=2, seed=2))
        assert a.mape != b.mape
