"""Smoke tests for the ablation drivers and the CLI parser."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.ablations import (
    AblationConfig,
    build_method_comparison,
    hierarchy_tradeoff,
    update_mode_comparison,
)


TINY = AblationConfig(
    arrival_rate=60.0,
    n_nodes=8,
    n_intervals=4,
    warmup_intervals=1,
)


class TestAblations:
    def test_update_mode_comparison_renders(self):
        out = update_mode_comparison(sizes=((30, 6),), seed=1)
        assert "Algorithm 2" in out and "30x6" in out

    def test_build_method_comparison_shows_agreement(self):
        out = build_method_comparison(sizes=((15, 4),), seed=1)
        assert "max |diff|" in out
        # The diff column must be floating-point-noise small.
        diff = float(out.splitlines()[-1].split("|")[-1])
        assert diff < 1e-8

    def test_hierarchy_tradeoff_renders(self):
        out = hierarchy_tradeoff(m=120, k=12, group_sizes=(60, 120), seed=2)
        assert "hierarchical" in out
        assert "(flat)" in out


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        for cmd in ("fig5", "fig6", "fig7", "ablations", "quick", "sweep"):
            args = parser.parse_args([cmd])
            assert args.command == cmd
        # aggregate requires --cache-dir
        args = parser.parse_args(["aggregate", "--cache-dir", "/tmp/c"])
        assert args.command == "aggregate" and args.cache_dir == "/tmp/c"
        with pytest.raises(SystemExit):
            parser.parse_args(["aggregate"])

    def test_workers_and_cache_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig6", "--workers", "4", "--cache-dir", "/tmp/sweep-cache"]
        )
        assert args.workers == 4 and args.cache_dir == "/tmp/sweep-cache"
        assert parser.parse_args(["fig5", "--workers", "2"]).workers == 2
        assert parser.parse_args(["fig7", "--workers", "2"]).workers == 2

    def test_sweep_subcommand_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.policies == "Basic,PCS"
        assert args.rates == "50,200"
        assert args.seeds == "0"
        assert args.workers == 1 and args.cache_dir is None
        assert args.aggregate is False

    def test_aggregate_flags(self):
        parser = build_parser()
        assert parser.parse_args(["sweep", "--aggregate"]).aggregate
        args = parser.parse_args(
            [
                "aggregate", "--cache-dir", "/tmp/c",
                "--metrics", "overall_latency.mean",
                "--confidence", "0.9", "--json", "--gc",
            ]
        )
        assert args.metrics == "overall_latency.mean"
        assert args.confidence == 0.9
        assert args.json and args.gc
        assert build_parser().parse_args(
            ["fig6", "--seeds", "1,2,3"]
        ).seeds == "1,2,3"

    def test_fig6_scale_choices(self):
        parser = build_parser()
        assert parser.parse_args(["fig6", "--scale", "paper"]).scale == "paper"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig6", "--scale", "galactic"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_main_sweep_and_aggregate_roundtrip(self, capsys, tmp_path):
        """End-to-end: `sweep --aggregate --cache-dir` then `aggregate`
        over the same directory print the same seed-level table."""
        cache_dir = str(tmp_path / "cli-cache")
        sweep_argv = [
            "sweep", "--policies", "Basic", "--rates", "40",
            "--seeds", "0,1", "--nodes", "6", "--search-groups", "3",
            "--replicas-per-group", "2", "--intervals", "3",
            "--interval-s", "8", "--warmup-intervals", "1",
            "--cache-dir", cache_dir, "--aggregate",
        ]
        assert main(sweep_argv) == 0
        sweep_out = capsys.readouterr().out
        assert "Seed-level aggregate" in sweep_out and "±" in sweep_out

        assert main(["aggregate", "--cache-dir", cache_dir]) == 0
        agg_out = capsys.readouterr().out
        table = sweep_out[sweep_out.index("Seed-level aggregate"):].strip()
        assert agg_out.strip() == table

        # --gc and --json compose: stdout stays pure parseable JSON,
        # the gc note goes to stderr.
        import json as json_mod

        assert main(["aggregate", "--cache-dir", cache_dir, "--gc", "--json"]) == 0
        captured = capsys.readouterr()
        assert "gc: removed 0" in captured.err
        assert json_mod.loads(captured.out)["groups"]

    def test_main_aggregate_without_manifest_fails_cleanly(
        self, capsys, tmp_path
    ):
        # A mistyped path: named error, exit 2, and no directory created.
        void = tmp_path / "void"
        assert main(["aggregate", "--cache-dir", str(void)]) == 2
        assert "no such cache directory" in capsys.readouterr().err
        assert not void.exists()
        # An existing directory without a manifest: also a clean error.
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["aggregate", "--cache-dir", str(empty)]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_main_aggregate_unknown_metric_fails_cleanly(
        self, capsys, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(
            [
                "sweep", "--policies", "Basic", "--rates", "40",
                "--nodes", "6", "--search-groups", "3",
                "--replicas-per-group", "2", "--intervals", "3",
                "--interval-s", "8", "--warmup-intervals", "1",
                "--cache-dir", cache_dir,
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["aggregate", "--cache-dir", cache_dir, "--metrics", "nope.metric"]
        ) == 2
        assert "nope.metric" in capsys.readouterr().err

    def test_main_fig5_runs(self, capsys, monkeypatch):
        # Patch to a tiny grid so the CLI test stays fast.
        from repro.experiments import fig5 as fig5_mod

        original = fig5_mod.Fig5Config

        def tiny_config(seed=0, **kwargs):
            return original(
                n_hadoop_sizes=3, n_spark_sizes=2, seed=seed, **kwargs
            )

        monkeypatch.setattr("repro.experiments.fig5.Fig5Config", tiny_config)
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "prediction error" in out


class TestCompareCLI:
    """`aggregate --compare DIR`: spec diff + joint paired-delta table."""

    def _sweep(self, cache_dir, nodes="6"):
        return [
            "sweep", "--policies", "Basic", "--rates", "40",
            "--seeds", "0,1", "--nodes", nodes, "--search-groups", "3",
            "--replicas-per-group", "2", "--intervals", "3",
            "--interval-s", "8", "--warmup-intervals", "1",
            "--cache-dir", cache_dir,
        ]

    def test_compare_flag_parses(self):
        args = build_parser().parse_args(
            ["aggregate", "--cache-dir", "/tmp/a", "--compare", "/tmp/b"]
        )
        assert args.compare == "/tmp/b"

    def test_compare_prints_spec_diff_and_deltas(self, capsys, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(self._sweep(a)) == 0
        assert main(self._sweep(b, nodes="8")) == 0
        capsys.readouterr()
        assert main(["aggregate", "--cache-dir", a, "--compare", b]) == 0
        out = capsys.readouterr().out
        assert "base.n_nodes: 6 -> 8" in out
        assert "Paired per-seed differences" in out
        assert "Basic" in out

    def test_compare_identical_runs(self, capsys, tmp_path):
        a = str(tmp_path / "a")
        assert main(self._sweep(a)) == 0
        capsys.readouterr()
        assert main(["aggregate", "--cache-dir", a, "--compare", a]) == 0
        out = capsys.readouterr().out
        assert "spec diff: none" in out
        assert "+0.00" in out  # zero deltas against itself

    def test_compare_json_payload(self, capsys, tmp_path):
        import json as json_mod

        a = str(tmp_path / "a")
        assert main(self._sweep(a)) == 0
        capsys.readouterr()
        assert main(
            ["aggregate", "--cache-dir", a, "--compare", a, "--json"]
        ) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["spec_diff"] == {}
        assert payload["cells"][0]["policy"] == "Basic"
        assert all(
            s["diff"]["overall_latency.mean"]["mean"] == 0.0
            for s in payload["cells"]
        )

    def test_compare_mismatched_seeds_fails_cleanly(self, capsys, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(self._sweep(a)) == 0
        argv = self._sweep(b)
        argv[argv.index("0,1")] = "0,2"  # different seed set
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["aggregate", "--cache-dir", a, "--compare", b]) == 2
        assert "different seed sets" in capsys.readouterr().err

    def test_compare_missing_dir_fails_cleanly(self, capsys, tmp_path):
        a = str(tmp_path / "a")
        assert main(self._sweep(a)) == 0
        capsys.readouterr()
        assert main(
            ["aggregate", "--cache-dir", a, "--compare", str(tmp_path / "nope")]
        ) == 2
        assert "no such cache directory" in capsys.readouterr().err


class TestScenarioCLI:
    def test_scenarios_catalog_shows_dag_shapes(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "diamond-search" in out and "branchy-api" in out
        assert "<-" in out  # DAG stages list their predecessors
        assert "opt" in out  # optional groups are flagged

    def test_fig6_paper_scale_rejects_presetless_scenario(self, capsys):
        from repro.errors import ConfigurationError
        from repro.scenarios import ScenarioSpec, register_scenario

        register_scenario(
            ScenarioSpec(
                name="cli-no-preset", description="d", build=lambda c: None
            ),
            replace_existing=True,
        )
        try:
            with pytest.raises(ConfigurationError, match="paper-scale preset"):
                main(["fig6", "--scale", "paper", "--scenario", "cli-no-preset"])
        finally:
            # The stub's build returns None; leaving it registered would
            # break any later test that walks the whole catalog.
            from repro.scenarios.spec import _REGISTRY

            _REGISTRY.pop("cli-no-preset", None)

    def test_shape_scale_defaults_to_unset_sentinel(self):
        """--shape-scale left off parses as None so `fig6 --scale
        paper` can tell it from an explicit `--shape-scale 1.0`."""
        parser = build_parser()
        assert parser.parse_args(["fig6"]).shape_scale is None
        assert parser.parse_args(
            ["fig6", "--shape-scale", "1.0"]
        ).shape_scale == 1.0
        assert parser.parse_args(["scenarios"]).shape_scale is None


class TestWorkloadCliFlags:
    """`--classes` / `--trace-profile` on quick, sweep and fig6."""

    @pytest.mark.parametrize("cmd", ["quick", "sweep", "fig6"])
    def test_defaults(self, cmd):
        args = build_parser().parse_args([cmd])
        assert args.trace_profile == "stationary"
        assert args.class_mix is None

    @pytest.mark.parametrize("cmd", ["quick", "sweep", "fig6"])
    def test_classes_parse_to_pairs(self, cmd):
        args = build_parser().parse_args(
            [cmd, "--classes", "search:0.6,autocomplete:0.4"]
        )
        assert args.class_mix == (("search", 0.6), ("autocomplete", 0.4))

    def test_classes_single_entry_and_zero_weight(self):
        args = build_parser().parse_args(
            ["quick", "--classes", "image-heavy:0"]
        )
        assert args.class_mix == (("image-heavy", 0.0),)

    @pytest.mark.parametrize(
        "bad",
        ["search", "search:abc", "search:-1", ":0.5", ""],
    )
    def test_malformed_classes_rejected(self, bad, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quick", "--classes", bad])
        capsys.readouterr()

    def test_trace_profile_choices(self):
        parser = build_parser()
        for profile in ("stationary", "diurnal", "burst", "flash-crowd"):
            args = parser.parse_args(["quick", "--trace-profile", profile])
            assert args.trace_profile == profile
        with pytest.raises(SystemExit):
            parser.parse_args(["quick", "--trace-profile", "full-moon"])

    def test_scenarios_subcommand_lists_class_table(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "mixed-frontend" in out
        assert "classes:" in out
        assert "nutch-search" in out
