"""Smoke tests for the ablation drivers and the CLI parser."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.ablations import (
    AblationConfig,
    build_method_comparison,
    hierarchy_tradeoff,
    update_mode_comparison,
)


TINY = AblationConfig(
    arrival_rate=60.0,
    n_nodes=8,
    n_intervals=4,
    warmup_intervals=1,
)


class TestAblations:
    def test_update_mode_comparison_renders(self):
        out = update_mode_comparison(sizes=((30, 6),), seed=1)
        assert "Algorithm 2" in out and "30x6" in out

    def test_build_method_comparison_shows_agreement(self):
        out = build_method_comparison(sizes=((15, 4),), seed=1)
        assert "max |diff|" in out
        # The diff column must be floating-point-noise small.
        diff = float(out.splitlines()[-1].split("|")[-1])
        assert diff < 1e-8

    def test_hierarchy_tradeoff_renders(self):
        out = hierarchy_tradeoff(m=120, k=12, group_sizes=(60, 120), seed=2)
        assert "hierarchical" in out
        assert "(flat)" in out


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        for cmd in ("fig5", "fig6", "fig7", "ablations", "quick", "sweep"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_workers_and_cache_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig6", "--workers", "4", "--cache-dir", "/tmp/sweep-cache"]
        )
        assert args.workers == 4 and args.cache_dir == "/tmp/sweep-cache"
        assert parser.parse_args(["fig5", "--workers", "2"]).workers == 2
        assert parser.parse_args(["fig7", "--workers", "2"]).workers == 2

    def test_sweep_subcommand_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.policies == "Basic,PCS"
        assert args.rates == "50,200"
        assert args.seeds == "0"
        assert args.workers == 1 and args.cache_dir is None

    def test_fig6_scale_choices(self):
        parser = build_parser()
        assert parser.parse_args(["fig6", "--scale", "paper"]).scale == "paper"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig6", "--scale", "galactic"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_main_fig5_runs(self, capsys, monkeypatch):
        # Patch to a tiny grid so the CLI test stays fast.
        from repro.experiments import fig5 as fig5_mod

        original = fig5_mod.Fig5Config

        def tiny_config(seed=0):
            return original(n_hadoop_sizes=3, n_spark_sizes=2, seed=seed)

        monkeypatch.setattr("repro.experiments.fig5.Fig5Config", tiny_config)
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "prediction error" in out
