"""Tests for the policy descriptors."""

import pytest

from repro.baselines.policies import (
    BasicPolicy,
    PCSPolicy,
    REDPolicy,
    ReissuePolicy,
    standard_policies,
)
from repro.errors import ConfigurationError


class TestNames:
    def test_paper_legend(self):
        names = [p.name for p in standard_policies()]
        assert names == ["Basic", "RED-3", "RED-5", "RI-90", "RI-99", "PCS"]

    def test_red_name_tracks_replicas(self):
        assert REDPolicy(replicas=4).name == "RED-4"

    def test_reissue_name_tracks_quantile(self):
        assert ReissuePolicy(quantile=0.95).name == "RI-95"


class TestSemantics:
    def test_only_pcs_schedules(self):
        for p in standard_policies():
            assert p.schedules == (p.name == "PCS")

    def test_copies(self):
        assert BasicPolicy().copies == 1
        assert REDPolicy(replicas=3).copies == 3
        assert REDPolicy(replicas=5).copies == 5
        assert ReissuePolicy().copies == 1  # secondary is conditional
        assert PCSPolicy().copies == 1

    def test_policies_hashable(self):
        assert len(set(standard_policies())) == 6


class TestValidation:
    def test_red_needs_two_replicas(self):
        with pytest.raises(ConfigurationError):
            REDPolicy(replicas=1)

    def test_red_negative_delay(self):
        with pytest.raises(ConfigurationError):
            REDPolicy(replicas=3, cancel_delay_s=-0.001)

    def test_reissue_quantile_bounds(self):
        with pytest.raises(ConfigurationError):
            ReissuePolicy(quantile=0.0)
        with pytest.raises(ConfigurationError):
            ReissuePolicy(quantile=1.0)
