"""Routing-kernel layer: registry dispatch, golden bit-identity, and
the hedged-policy extension seam."""

import numpy as np
import pytest

from repro.baselines.policies import (
    BasicPolicy,
    HedgedPolicy,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
)
from repro.baselines.routing import (
    HedgedKernel,
    RandomSplitKernel,
    RedundancyKernel,
    ReissueKernel,
    register_routing_kernel,
    registered_kernel_types,
    routing_kernel_for,
)
from repro.errors import ConfigurationError, SimulationError
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.sim.queue_sim import simulate_service_interval
from repro.simcore.distributions import Exponential, LogNormal
from repro.units import ms


def _topology(n_groups=3, replicas=3, seg_replicas=2):
    def comp(g, r):
        return Component(
            name=f"s-g{g}-r{r}",
            cls=ComponentClass.SEARCHING,
            base_service=LogNormal(ms(6), 0.8),
        )

    seg = Stage(
        "segmenting",
        [
            ReplicaGroup(
                "seg",
                [
                    Component(
                        name=f"seg-{r}",
                        cls=ComponentClass.SEGMENTING,
                        base_service=Exponential(ms(1.5)),
                    )
                    for r in range(seg_replicas)
                ],
            )
        ],
    )
    search = Stage(
        "searching",
        [
            ReplicaGroup(f"g{g}", [comp(g, r) for r in range(replicas)])
            for g in range(n_groups)
        ],
    )
    return ServiceTopology([seg, search])


def _dists(topology):
    return {c.name: c.base_service for c in topology.components}


class TestKernelRegistry:
    @pytest.mark.parametrize(
        "policy,kernel_type",
        [
            (BasicPolicy(), RandomSplitKernel),
            (PCSPolicy(), RandomSplitKernel),
            (Policy(), RandomSplitKernel),
            (REDPolicy(replicas=3), RedundancyKernel),
            (ReissuePolicy(quantile=0.9), ReissueKernel),
            (HedgedPolicy(), HedgedKernel),
        ],
    )
    def test_resolution(self, policy, kernel_type):
        assert type(routing_kernel_for(policy)) is kernel_type

    def test_kernel_carries_policy_parameters(self):
        k = routing_kernel_for(REDPolicy(replicas=4, cancel_delay_s=0.007))
        assert k.replicas == 4 and k.cancel_delay_s == 0.007
        r = routing_kernel_for(ReissuePolicy(quantile=0.99))
        assert r.quantile == 0.99
        h = routing_kernel_for(HedgedPolicy(hedge_delay_s=0.02))
        assert h.hedge_delay_s == 0.02

    def test_subclass_inherits_parent_kernel_via_mro(self):
        class QuietPCS(PCSPolicy):
            pass

        assert type(routing_kernel_for(QuietPCS())) is RandomSplitKernel

    def test_unregistered_object_rejected(self):
        class Alien:
            pass

        with pytest.raises(SimulationError, match="no routing kernel"):
            routing_kernel_for(Alien())

    def test_third_party_registration(self):
        class MyPolicy(Policy):
            pass

        register_routing_kernel(MyPolicy, lambda p: RedundancyKernel(2, 0.0))
        try:
            assert type(routing_kernel_for(MyPolicy())) is RedundancyKernel
        finally:
            registered_kernel_types()  # snapshot API stays importable
            # remove the test registration so it cannot leak
            from repro.baselines import routing as routing_mod

            routing_mod._KERNEL_FACTORIES.pop(MyPolicy, None)

    def test_non_class_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_routing_kernel("not-a-class", lambda p: RandomSplitKernel())

    def test_builtin_registrations_snapshotted(self):
        types = registered_kernel_types()
        for cls in (Policy, BasicPolicy, REDPolicy, ReissuePolicy,
                    HedgedPolicy, PCSPolicy):
            assert cls in types


class TestKernelValidation:
    def test_redundancy_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RedundancyKernel(replicas=0, cancel_delay_s=0.0)
        with pytest.raises(ConfigurationError):
            RedundancyKernel(replicas=2, cancel_delay_s=-1.0)

    def test_reissue_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            ReissueKernel(quantile=1.5)

    def test_hedged_rejects_bad_delay(self):
        with pytest.raises(ConfigurationError):
            HedgedKernel(hedge_delay_s=0.0)


class TestGoldenBitIdentity:
    """The kernel refactor must reproduce the pre-refactor simulator's
    sample paths *exactly*.  These values were captured from the
    isinstance-dispatch implementation (PR 2 tree) on the fixed
    topology/seed below; any drift in draw order or arithmetic breaks
    them."""

    #: policy name -> (n_requests, sum(overall), overall[7],
    #:                 sum(pooled component latencies), pooled size)
    GOLDEN = {
        "Basic": (2425, 31.956922447649887, 0.012152644076742727,
                  53.10746861023304, 9700),
        "PCS": (2425, 31.956922447649887, 0.012152644076742727,
                53.10746861023304, 9700),
        "RED-3": (2425, 17.904373023319827, 0.011405061683928075,
                  32.54796673171518, 9700),
        "RED-2": (2425, 20.732708577712362, 0.021790212284553245,
                  36.60813227166119, 9700),
        "RI-90": (2425, 28.90752230120558, 0.022653779403871657,
                  50.212291499543134, 9700),
        "RI-99": (2425, 31.254161734538396, 0.022125959790094445,
                  52.3642633317197, 9700),
    }

    POLICIES = [
        BasicPolicy(),
        PCSPolicy(),
        REDPolicy(replicas=3, cancel_delay_s=0.002),
        REDPolicy(replicas=2, cancel_delay_s=0.0),
        ReissuePolicy(quantile=0.90),
        ReissuePolicy(quantile=0.99),
    ]

    @pytest.mark.parametrize("policy", POLICIES, ids=[p.name for p in POLICIES])
    def test_kernel_matches_pre_refactor_sample_paths(self, policy):
        topo = _topology()
        out = simulate_service_interval(
            topo, policy, 60.0, 40.0, _dists(topo),
            np.random.default_rng(2024),
        )
        pooled = out.pooled_component_latencies()
        got = (
            out.n_requests,
            float(out.request_latencies.sum()),
            float(out.request_latencies[7]),
            float(pooled.sum()),
            int(pooled.size),
        )
        assert got == self.GOLDEN[policy.name]


class TestHedgedPolicy:
    """The worked example: a policy added through the registry alone."""

    def test_name_and_load_multiplier(self):
        p = HedgedPolicy(hedge_delay_s=0.008, expected_hedge_fraction=0.1)
        assert p.name == "Hedge-8ms"
        assert p.load_multiplier == pytest.approx(1.1)
        with pytest.raises(ConfigurationError):
            HedgedPolicy(hedge_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            HedgedPolicy(expected_hedge_fraction=2.0)

    def test_reduces_tail_at_light_load(self):
        topo = _topology(n_groups=2, replicas=4)
        basic = simulate_service_interval(
            topo, BasicPolicy(), 10.0, 600.0, _dists(topo),
            np.random.default_rng(3),
        )
        hedged = simulate_service_interval(
            topo, HedgedPolicy(hedge_delay_s=0.008), 10.0, 600.0,
            _dists(topo), np.random.default_rng(3),
        )
        assert np.percentile(hedged.request_latencies, 99) < np.percentile(
            basic.request_latencies, 99
        )

    def test_longer_delay_hedges_less(self):
        topo = _topology(n_groups=1, replicas=4)

        def executed(delay):
            out = simulate_service_interval(
                topo, HedgedPolicy(hedge_delay_s=delay), 50.0, 200.0,
                _dists(topo), np.random.default_rng(4),
            )
            return sum(
                s.size for s in out.component_service_samples.values()
            ) / out.n_requests

        assert executed(0.050) < executed(0.004)

    def test_single_replica_group_degenerates_to_basic(self):
        topo = _topology(n_groups=2, replicas=1, seg_replicas=1)
        basic = simulate_service_interval(
            topo, BasicPolicy(), 20.0, 100.0, _dists(topo),
            np.random.default_rng(5),
        )
        hedged = simulate_service_interval(
            topo, HedgedPolicy(), 20.0, 100.0, _dists(topo),
            np.random.default_rng(5),
        )
        np.testing.assert_allclose(
            basic.request_latencies, hedged.request_latencies
        )
