"""The induced-load descriptor seam: the ``InducedLoad`` model, its
exact degenerate-case contract with the legacy ``load_multiplier``
scalar, the group-capped fan-out fix, and the adaptive-policy
descriptors plus their CLI names."""

import math

import pytest

from repro.baselines.policies import (
    AdaptiveHedgePolicy,
    AdaptiveReissuePolicy,
    BasicPolicy,
    HedgedPolicy,
    InducedLoad,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
    standard_policies,
)
from repro.errors import ConfigurationError
from repro.sim.sweep import policy_from_name


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"copies": 0}, "copies"),
            ({"copies": -2}, "copies"),
            ({"reissue_fraction": -0.1}, "reissue_fraction"),
            ({"reissue_fraction": 1.5}, "reissue_fraction"),
            ({"cancel_delay_s": -0.001}, "cancel_delay_s"),
            ({"hedge_delay_s": 0.0}, "hedge_delay_s"),
            ({"hedge_delay_s": -0.01}, "hedge_delay_s"),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            InducedLoad(**kwargs)

    def test_replica_rate_rejects_empty_group(self):
        with pytest.raises(ConfigurationError, match="n_replicas"):
            InducedLoad().replica_rate(100.0, 1.0, 0)


class TestDegenerateCaseContract:
    """``scalar`` must reproduce the retired ``load_multiplier``
    float expression bit for bit — the refactor's identity bar."""

    @pytest.mark.parametrize(
        "policy, expected",
        [
            (BasicPolicy(), 1.0),
            (PCSPolicy(), 1.0),
            (Policy(), 1.0),
            (REDPolicy(replicas=3), 3.0),
            (REDPolicy(replicas=5), 5.0),
            # The historical expressions, not rounded literals: the
            # scalar must equal them to the last bit.
            (ReissuePolicy(quantile=0.90), 1.0 + (1.0 - 0.90)),
            (ReissuePolicy(quantile=0.99), 1.0 + (1.0 - 0.99)),
            (HedgedPolicy(), 1.0 + 0.05),
            (AdaptiveReissuePolicy(quantile=0.90), 1.0 + (1.0 - 0.90)),
            (AdaptiveHedgePolicy(), 1.0 + (1.0 - 0.95)),
        ],
    )
    def test_scalar_is_the_exact_legacy_multiplier(self, policy, expected):
        assert policy.induced_load().scalar == expected
        assert policy.load_multiplier == expected

    def test_load_multiplier_is_derived_not_stored(self):
        # The property reads through induced_load(), so a policy
        # overriding the descriptor never desynchronises the scalar.
        class Doubling(Policy):
            def induced_load(self):
                return InducedLoad(copies=2)

        assert Doubling().load_multiplier == 2.0


class TestGroupMultiplier:
    def test_single_replica_group_degenerates_to_one(self):
        # Kernels random-split on 1-replica groups; the accounting
        # agrees even for heavy duplication policies.
        assert InducedLoad(copies=5).group_multiplier(1) == 1.0
        assert InducedLoad(reissue_fraction=0.5).group_multiplier(1) == 1.0

    def test_fanout_capped_at_group_size(self):
        # A RED-5 sub-request on a 2-replica group executes at most
        # twice — the full-fan-out accounting bug this seam fixes.
        red5 = REDPolicy(replicas=5).induced_load()
        assert red5.group_multiplier(2) == 2.0
        assert red5.group_multiplier(5) == 5.0
        assert red5.group_multiplier(9) == 5.0

    def test_reissue_fraction_rides_on_top_of_copies(self):
        il = InducedLoad(copies=2, reissue_fraction=0.25)
        assert il.group_multiplier(4) == 2.25
        assert il.scalar == 2.25

    def test_replica_rate_composes_participation_cap_and_split(self):
        il = REDPolicy(replicas=5).induced_load()
        # 0.5 participation x capped 2 copies x 120 req/s over 2 replicas.
        assert il.replica_rate(120.0, 0.5, 2) == 0.5 * 2.0 * 120.0 / 2
        # Above the cap the multiplier saturates at 5 copies.
        assert il.replica_rate(120.0, 1.0, 8) == 5.0 * 120.0 / 8


class TestExpectedGroupMultiplier:
    """The load-dependent refinement of the static planning bound."""

    def test_empty_queue_runs_every_copy(self):
        il = REDPolicy(replicas=3).induced_load()
        assert il.expected_group_multiplier(3, queue_wait_s=0.0) == 3.0

    def test_heavy_queueing_collapses_cancellation_toward_one(self):
        il = REDPolicy(replicas=3).induced_load()
        light = il.expected_group_multiplier(3, queue_wait_s=1e-4)
        heavy = il.expected_group_multiplier(3, queue_wait_s=10.0)
        assert 1.0 < heavy < light <= 3.0
        # Exact closed form: 1 + (k-1)(1 - exp(-delay/wait)).
        assert heavy == 1.0 + 2 * (1.0 - math.exp(-0.002 / 10.0))

    def test_hedge_fraction_tracks_overstay_probability(self):
        il = HedgedPolicy(hedge_delay_s=0.010).induced_load()
        # Sojourns far below the delay: almost nothing hedges.
        calm = il.expected_group_multiplier(3, sojourn_s=0.001)
        # Sojourns far above the delay: almost everything hedges.
        slammed = il.expected_group_multiplier(3, sojourn_s=1.0)
        assert calm == pytest.approx(1.0, abs=1e-4)
        assert slammed == pytest.approx(2.0, abs=2e-2)
        assert il.expected_group_multiplier(3, sojourn_s=0.0) == 1.0

    def test_percentile_reissue_needs_no_correction(self):
        il = ReissuePolicy(quantile=0.9).induced_load()
        assert il.expected_group_multiplier(3, queue_wait_s=5.0) == il.group_multiplier(3)


class TestAdaptiveDescriptors:
    def test_adapts_threshold_flags(self):
        for p in standard_policies() + [HedgedPolicy()]:
            assert not p.adapts_threshold, p.name
        assert AdaptiveReissuePolicy(quantile=0.9).adapts_threshold
        assert AdaptiveHedgePolicy().adapts_threshold

    def test_legend_names(self):
        assert AdaptiveReissuePolicy(quantile=0.9).name == "ARI-90"
        assert AdaptiveHedgePolicy(quantile=0.99).name == "AHedge-99"

    def test_ahedge_accounts_as_percentile_reissue(self):
        # Once tuned, the delay sits at the q-th latency percentile, so
        # the declared induced load is the (1 - q) backup fraction, not
        # the fixed-delay estimate.
        il = AdaptiveHedgePolicy(quantile=0.95).induced_load()
        assert il.reissue_fraction == 1.0 - 0.95
        assert il.hedge_delay_s is None

    def test_bad_quantile_rejected(self):
        with pytest.raises(ConfigurationError, match="quantile"):
            AdaptiveHedgePolicy(quantile=1.0)


class TestPolicyNames:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("ARI-90", AdaptiveReissuePolicy(quantile=0.90)),
            ("ari-95", AdaptiveReissuePolicy(quantile=0.95)),
            ("AHedge", AdaptiveHedgePolicy()),
            ("AHedge-99", AdaptiveHedgePolicy(quantile=0.99)),
            ("Hedge", HedgedPolicy()),
            ("Hedge-25ms", HedgedPolicy(hedge_delay_s=0.025)),
        ],
    )
    def test_adaptive_legend_names_parse(self, name, expected):
        assert policy_from_name(name) == expected

    @pytest.mark.parametrize("name", ["ARI-nope", "AHedge-x", "ARI-0"])
    def test_bad_adaptive_names_rejected(self, name):
        with pytest.raises(ConfigurationError):
            policy_from_name(name)
