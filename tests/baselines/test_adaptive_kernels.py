"""Adaptive routing kernels and the threshold-feed seam: registry
dispatch, unbound-equals-fixed identity, online tuning through a bound
feed, and the realized-duplicate accounting every kernel now reports."""

import numpy as np
import pytest

from repro.baselines.policies import (
    AdaptiveHedgePolicy,
    AdaptiveReissuePolicy,
    BasicPolicy,
    HedgedPolicy,
    REDPolicy,
    ReissuePolicy,
)
from repro.baselines.routing import (
    AdaptiveHedgeKernel,
    AdaptiveReissueKernel,
    HedgedKernel,
    RandomSplitKernel,
    ReissueKernel,
    routing_kernel_for,
)
from repro.errors import MonitoringError
from repro.monitoring.streaming import ReissueThresholdFeed
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.sim.queue_sim import simulate_service_interval
from repro.simcore.distributions import Exponential, LogNormal
from repro.units import ms


def _topology(n_groups=3, replicas=3):
    def comp(g, r):
        return Component(
            name=f"s-g{g}-r{r}",
            cls=ComponentClass.SEARCHING,
            base_service=LogNormal(ms(6), 0.8),
        )

    seg = Stage(
        "segmenting",
        [
            ReplicaGroup(
                "seg",
                [
                    Component(
                        name=f"seg-{r}",
                        cls=ComponentClass.SEGMENTING,
                        base_service=Exponential(ms(1.5)),
                    )
                    for r in range(2)
                ],
            )
        ],
    )
    search = Stage(
        "searching",
        [
            ReplicaGroup(f"g{g}", [comp(g, r) for r in range(replicas)])
            for g in range(n_groups)
        ],
    )
    return ServiceTopology([seg, search])


def _dists(topology):
    return {c.name: c.base_service for c in topology.components}


def _run(policy, rng_seed=11, rate=60.0, duration=40.0, feed=None, topo=None):
    topo = _topology() if topo is None else topo
    return simulate_service_interval(
        topo, policy, rate, duration, _dists(topo),
        np.random.default_rng(rng_seed), threshold_feed=feed,
    )


class TestRegistry:
    def test_adaptive_policies_resolve_to_adaptive_kernels(self):
        k = routing_kernel_for(AdaptiveReissuePolicy(quantile=0.9))
        assert isinstance(k, AdaptiveReissueKernel)
        assert k.quantile == 0.9
        h = routing_kernel_for(AdaptiveHedgePolicy(quantile=0.99))
        assert isinstance(h, AdaptiveHedgeKernel)
        assert h.quantile == 0.99

    def test_bind_returns_a_new_bound_kernel(self):
        feed = ReissueThresholdFeed()
        unbound = AdaptiveReissueKernel(0.9)
        bound = unbound.bind_threshold_feed(feed)
        assert bound is not unbound
        assert bound.feed is feed and unbound.feed is None

    def test_base_kernels_ignore_binding(self):
        # bind_threshold_feed on a non-adaptive kernel is the identity,
        # so the simulator can bind unconditionally.
        k = ReissueKernel(0.9)
        assert k.bind_threshold_feed(ReissueThresholdFeed()) is k
        r = RandomSplitKernel()
        assert r.bind_threshold_feed(ReissueThresholdFeed()) is r


class TestUnboundIdentity:
    """Without a feed, adaptive kernels are behaviour-identical to
    their fixed counterparts — the cold-start contract."""

    def test_unbound_ari_equals_fixed_ri(self):
        fixed = _run(ReissuePolicy(quantile=0.9))
        adaptive = _run(AdaptiveReissuePolicy(quantile=0.9))
        np.testing.assert_array_equal(
            adaptive.request_latencies, fixed.request_latencies
        )
        assert adaptive.duplicates == fixed.duplicates

    def test_unbound_ahedge_equals_fixed_hedge(self):
        fixed = _run(HedgedPolicy(hedge_delay_s=0.010))
        adaptive = _run(AdaptiveHedgePolicy(hedge_delay_s=0.010))
        np.testing.assert_array_equal(
            adaptive.request_latencies, fixed.request_latencies
        )
        assert adaptive.duplicates == fixed.duplicates


class TestThresholdFeed:
    def test_warmup_gate(self):
        feed = ReissueThresholdFeed(min_observations=3)
        assert feed.current_threshold_s() is None
        feed.observe_window(0.010, 100)
        feed.observe_window(0.020, 100)
        assert feed.current_threshold_s() is None
        feed.observe_window(0.030, 100)
        assert feed.current_threshold_s() == pytest.approx(0.020)
        assert feed.observations == 3
        assert feed.total_requests == 300

    def test_empty_windows_carry_no_information(self):
        feed = ReissueThresholdFeed()
        feed.observe_window(0.010, 0)
        assert feed.observations == 0
        assert feed.current_threshold_s() is None

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.001])
    def test_bad_observations_rejected(self, bad):
        with pytest.raises(MonitoringError, match="threshold observation"):
            ReissueThresholdFeed().observe_window(bad, 10)

    def test_bad_min_observations_rejected(self):
        with pytest.raises(MonitoringError, match="min_observations"):
            ReissueThresholdFeed(min_observations=0)

    def test_median_is_robust_to_one_outlier_window(self):
        feed = ReissueThresholdFeed()
        for t in (0.010, 0.011, 0.012, 0.011, 5.0):
            feed.observe_window(t, 50)
        assert feed.current_threshold_s() < 0.1


class TestBoundRouting:
    def test_kernels_populate_the_feed(self):
        feed = ReissueThresholdFeed()
        out = _run(AdaptiveReissuePolicy(quantile=0.9), feed=feed)
        # One observation per multi-replica group the interval routed
        # (the 2-replica segmenting group plus 3 searching groups).
        assert feed.observations == 4
        assert feed.total_requests == 4 * out.n_requests
        assert feed.current_threshold_s() is not None

    def test_hedge_kernel_feeds_its_quantile_not_its_delay(self):
        feed = ReissueThresholdFeed()
        _run(AdaptiveHedgePolicy(hedge_delay_s=5.0, quantile=0.5), feed=feed)
        # The observed medians of ~ms-scale sojourns, not the absurd
        # configured cold-start delay.
        assert 0 < feed.current_threshold_s() < 0.1

    def test_tuned_threshold_changes_routing(self):
        # Warm a feed with a tiny threshold: nearly every sub-request
        # then overstays and reissues, unlike the fixed RI-99 kernel.
        feed = ReissueThresholdFeed()
        feed.observe_window(1e-6, 1000)
        tuned = _run(AdaptiveReissuePolicy(quantile=0.99), feed=feed)
        fixed = _run(ReissuePolicy(quantile=0.99))
        assert tuned.duplicates > 10 * max(fixed.duplicates, 1)

    def test_second_window_routes_with_first_windows_estimate(self):
        feed = ReissueThresholdFeed()
        first = _run(AdaptiveReissuePolicy(quantile=0.9), feed=feed)
        after_first = feed.observations
        second = _run(AdaptiveReissuePolicy(quantile=0.9), feed=feed,
                      rng_seed=12)
        assert after_first == 4 and feed.observations == 8
        # Both windows executed and reported realized duplicates.
        assert first.duplicates > 0 and second.duplicates > 0


class TestRealizedDuplicates:
    def test_basic_routing_never_duplicates(self):
        assert _run(BasicPolicy()).duplicates == 0

    def test_reissue_duplicates_track_the_quantile(self):
        out = _run(ReissuePolicy(quantile=0.9), rate=80.0, duration=60.0)
        # Each multi-replica group reissues ~ (1 - q) of its
        # sub-requests; 4 such groups serve every request.
        per_request = out.duplicate_load
        assert 0.5 * 4 * 0.1 < per_request < 2.0 * 4 * 0.1

    def test_redundancy_reports_escaped_copies_only(self):
        out = _run(REDPolicy(replicas=3, cancel_delay_s=0.002))
        # Strictly fewer than full fan-out (2 extra copies x 4 groups):
        # cancellation reclaims some copies.
        assert 0 < out.duplicate_load < 8.0

    def test_instant_cancellation_still_overlaps_idle_starts(self):
        # With delay 0 only copies that started before the quickest
        # finished keep running; at light load most get cancelled.
        lazy = _run(REDPolicy(replicas=3, cancel_delay_s=0.002), rate=20.0)
        instant = _run(REDPolicy(replicas=3, cancel_delay_s=0.0), rate=20.0)
        assert instant.duplicate_load <= lazy.duplicate_load

    def test_duplicate_load_is_per_request(self):
        out = _run(ReissuePolicy(quantile=0.9))
        assert out.duplicate_load == out.duplicates / out.n_requests
