"""Property-based tests for the shared metric kernel.

Every reported percentile in the package goes through
:func:`repro.sim.metrics.percentile`; these tests pin its *algebraic*
contract (monotonicity in q, permutation invariance, min/max bounds,
agreement with numpy's nearest-rank convention) and the exact
``to_dict``/``from_dict`` round-trips of the summary layer over
randomly generated samples.

Two engines drive the same properties:

- ``hypothesis`` strategies, when the library is importable (it is not
  part of the minimal tier-1 environment), with shrinking on failure;
- a stdlib-``random`` fallback parametrised over fixed seeds, so the
  whole contract stays covered even where hypothesis is unavailable.

The property implementations are shared; the engines only differ in
how they produce ``(values, qs)`` inputs.
"""

import json
import random

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import LatencySummary, percentile, pool, summarize

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # minimal tier-1 environment
    HAVE_HYPOTHESIS = False

#: Latencies are non-negative, finite seconds; keep magnitudes in a
#: range where float arithmetic is exact enough for equality checks.
MAX_LATENCY_S = 1e6


# ----------------------------------------------------------------------
# the properties (engine-agnostic)
# ----------------------------------------------------------------------
def check_monotone_in_q(values, q1, q2):
    """q1 <= q2 implies percentile(q1) <= percentile(q2)."""
    lo, hi = sorted((q1, q2))
    assert percentile(values, lo) <= percentile(values, hi)


def check_permutation_invariant(values, q, shuffler):
    """Any reordering of the sample leaves every percentile unchanged."""
    shuffled = list(values)
    shuffler(shuffled)
    assert percentile(shuffled, q) == percentile(values, q)


def check_bounded_by_min_max(values, q):
    """Every percentile is an observed value between min and max."""
    p = percentile(values, q)
    assert min(values) <= p <= max(values)
    # Nearest-rank: the result is an actually observed latency.
    assert p in np.asarray(values, dtype=np.float64)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


def check_agrees_with_numpy_higher(values, q):
    """The kernel *is* numpy's method="higher" — pin the convention."""
    expected = float(np.percentile(np.asarray(values, dtype=np.float64), q, method="higher"))
    assert percentile(values, q) == expected


def check_summary_roundtrip(values):
    """summarize → to_dict → JSON → from_dict is exact."""
    summary = summarize(values)
    back = LatencySummary.from_dict(json.loads(json.dumps(summary.to_dict())))
    assert back == summary


def check_pool_consistency(values, n_chunks):
    """Pooling arbitrary splits reproduces the whole sample's summary."""
    arr = np.asarray(values, dtype=np.float64)
    bounds = np.linspace(0, arr.size, n_chunks + 1).astype(int)
    chunks = [arr[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
    pooled = pool(chunks)
    assert pooled.size == arr.size
    assert summarize(pooled) == summarize(arr)


# ----------------------------------------------------------------------
# engine 1: hypothesis
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    latencies = st.lists(
        st.floats(min_value=0.0, max_value=MAX_LATENCY_S, allow_nan=False),
        min_size=1,
        max_size=200,
    )
    quantiles = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)

    class TestHypothesisProperties:
        @given(latencies, quantiles, quantiles)
        @settings(max_examples=60, deadline=None)
        def test_monotone_in_q(self, values, q1, q2):
            check_monotone_in_q(values, q1, q2)

        @given(latencies, quantiles, st.randoms(use_true_random=False))
        @settings(max_examples=60, deadline=None)
        def test_permutation_invariant(self, values, q, rng):
            check_permutation_invariant(values, q, rng.shuffle)

        @given(latencies, quantiles)
        @settings(max_examples=60, deadline=None)
        def test_bounded_and_observed(self, values, q):
            check_bounded_by_min_max(values, q)

        @given(latencies, quantiles)
        @settings(max_examples=60, deadline=None)
        def test_agrees_with_numpy_higher(self, values, q):
            check_agrees_with_numpy_higher(values, q)

        @given(latencies)
        @settings(max_examples=60, deadline=None)
        def test_summary_roundtrip(self, values):
            check_summary_roundtrip(values)

        @given(latencies, st.integers(min_value=1, max_value=7))
        @settings(max_examples=60, deadline=None)
        def test_pool_consistency(self, values, n_chunks):
            check_pool_consistency(values, n_chunks)


# ----------------------------------------------------------------------
# engine 2: stdlib-random fallback (always runs)
# ----------------------------------------------------------------------
def _random_case(seed: int):
    """One deterministic random (values, q1, q2) case."""
    rng = random.Random(seed)
    n = rng.randint(1, 200)
    # Mix magnitudes (µs to ~hours) and exact duplicates.
    values = [
        rng.choice(
            [
                rng.uniform(0.0, 1e-3),
                rng.uniform(0.0, 1.0),
                rng.uniform(0.0, MAX_LATENCY_S),
                0.0,
            ]
        )
        for _ in range(n)
    ]
    if n > 3:  # force ties: nearest-rank must cope with duplicates
        values[1] = values[0]
    return rng, values, rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)


@pytest.mark.parametrize("seed", range(25))
class TestStdlibFallbackProperties:
    """The same contract, driven by seeded stdlib randomness."""

    def test_monotone_in_q(self, seed):
        _, values, q1, q2 = _random_case(seed)
        check_monotone_in_q(values, q1, q2)

    def test_permutation_invariant(self, seed):
        rng, values, q, _ = _random_case(seed)
        check_permutation_invariant(values, q, rng.shuffle)

    def test_bounded_and_observed(self, seed):
        _, values, q, _ = _random_case(seed)
        check_bounded_by_min_max(values, q)

    def test_agrees_with_numpy_higher(self, seed):
        _, values, q, _ = _random_case(seed)
        check_agrees_with_numpy_higher(values, q)

    def test_summary_roundtrip(self, seed):
        _, values, _, _ = _random_case(seed)
        check_summary_roundtrip(values)

    def test_pool_consistency(self, seed):
        rng, values, _, _ = _random_case(seed)
        check_pool_consistency(values, rng.randint(1, 7))


# ----------------------------------------------------------------------
# edge cases the generators cannot hit
# ----------------------------------------------------------------------
class TestKernelEdges:
    def test_empty_sample_rejected(self):
        with pytest.raises(SimulationError):
            percentile([], 99)

    def test_out_of_range_q_rejected(self):
        for q in (-0.1, 100.1):
            with pytest.raises(SimulationError):
                percentile([1.0], q)

    def test_singleton_is_every_percentile(self):
        for q in (0, 17.3, 50, 99, 100):
            assert percentile([0.25], q) == 0.25
