"""Chunked and streamed execution must not change what a run reports.

The memory-bounded execution paths added for million-request intervals
come with a two-part contract:

- **exact mode + chunking is bit-identical**: for any
  ``chunk_requests``, every built-in scenario reproduces the unchunked
  ``metrics_dict()`` byte for byte (golden pins and sweep-cache
  digests cannot tell the difference);
- **streaming mode is honestly labelled**: a streamed run carries
  ``summary_mode="streaming"`` provenance, keeps ``n``/``mean``/``max``
  exact, and its estimated percentiles agree with the exact path within
  the estimator error contract — and exact and streamed seeds refuse to
  aggregate into one cell.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines.policies import BasicPolicy, REDPolicy, ReissuePolicy
from repro.errors import ExperimentError, SimulationError
from repro.rng import RngRegistry
from repro.scenarios import get_scenario
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.sim.aggregate import SeedAggregate
from repro.sim.des_service import DESServiceSimulator
from repro.sim.estimators import IntervalAccumulatorSet
from repro.sim.metrics import percentile
from repro.sim.queue_sim import simulate_service_interval
from repro.sim.runner import ExperimentRunner, PolicyResult
from repro.simcore.distributions import Exponential, LogNormal

BUILTINS = (
    "branchy-api",
    "diamond-search",
    "fanout-feed",
    "mixed-frontend",
    "nutch-search",
    "pipeline-deep",
)


def _run(scenario: str, policy=None, **overrides) -> PolicyResult:
    spec = get_scenario(scenario)
    cfg = spec.runner_config(
        arrival_rate=30.0,
        interval_s=4.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=11,
        **overrides,
    )
    return ExperimentRunner(cfg, scenario=spec).run(policy or BasicPolicy())


# Unchunked exact baselines, one per scenario, shared across the chunk
# sizes (module-level so the parametrised tests reuse them).
_BASELINE: dict = {}


def _baseline(scenario: str) -> PolicyResult:
    if scenario not in _BASELINE:
        _BASELINE[scenario] = _run(scenario)
    return _BASELINE[scenario]


class TestChunkedRunnerBitIdentity:
    """Every built-in scenario, chunked == unchunked, byte for byte."""

    @pytest.mark.parametrize("scenario", BUILTINS)
    @pytest.mark.parametrize("chunk", [1, 7, 1000])
    def test_metrics_dict_bit_identical(self, scenario, chunk):
        base = _baseline(scenario)
        chunked = _run(scenario, chunk_requests=chunk)
        assert chunked.metrics_dict() == base.metrics_dict()

    def test_exact_chunked_run_keeps_exact_provenance(self):
        chunked = _run("nutch-search", chunk_requests=7)
        assert chunked.summary_mode is None
        assert "summary_mode" not in chunked.metrics_dict()

    def test_per_class_latencies_chunk_invariant(self):
        # mixed-frontend is the classed scenario: the per-class split
        # must survive chunk boundaries exactly, class by class.
        base = _baseline("mixed-frontend")
        chunked = _run("mixed-frontend", chunk_requests=13)
        assert base.per_class is not None
        assert chunked.per_class == base.per_class


class TestMonolithicFallback:
    """Chunk-incapable kernels (redundancy, reissue) fall back to the
    exact single pass — same results, chunk size or not — and record
    that they did via the ``chunk_fallback`` provenance flag."""

    @pytest.mark.parametrize(
        "policy", [REDPolicy(replicas=2), ReissuePolicy(quantile=0.9)],
        ids=["RED-2", "RI-90"],
    )
    def test_fallback_bit_identical(self, policy):
        base = _run("nutch-search", policy=policy)
        chunked = _run("nutch-search", policy=policy, chunk_requests=5)
        # The fallback engaged and says so; everything *measured* is
        # still bit-identical to the unchunked run.
        assert chunked.chunk_fallback is True
        assert base.chunk_fallback is False
        stripped = chunked.metrics_dict()
        assert stripped.pop("chunk_fallback") is True
        assert stripped == base.metrics_dict()

    def test_fallback_flag_round_trips_and_renders(self):
        chunked = _run(
            "nutch-search", policy=REDPolicy(replicas=2), chunk_requests=5
        )
        again = PolicyResult.from_dict(chunked.to_dict())
        assert again.chunk_fallback is True
        assert "chunking: monolithic fallback" in chunked.render()

    def test_chunk_capable_run_omits_the_key(self):
        # Digest stability: the key only exists when the fallback
        # engaged, so chunk-capable runs (and old cache entries)
        # serialise exactly as before the field existed.
        chunked = _run("nutch-search", chunk_requests=7)
        assert chunked.chunk_fallback is False
        assert "chunk_fallback" not in chunked.to_dict()
        assert "chunking" not in chunked.render()


def _topology():
    def comp(name, cls, dist):
        return Component(name=name, cls=cls, base_service=dist)

    return ServiceTopology(
        [
            Stage(
                "searching",
                [
                    ReplicaGroup(
                        f"g{g}",
                        [
                            comp(
                                f"s-{g}-{r}",
                                ComponentClass.SEARCHING,
                                LogNormal(0.006, 0.8),
                            )
                            for r in range(3)
                        ],
                    )
                    for g in range(4)
                ],
            ),
            Stage(
                "aggregating",
                [
                    ReplicaGroup(
                        "agg",
                        [
                            comp(
                                f"agg-{r}",
                                ComponentClass.AGGREGATING,
                                Exponential(0.0015),
                            )
                            for r in range(2)
                        ],
                    )
                ],
            ),
        ]
    )


def _dists(topo):
    return {c.name: c.base_service for c in topo.components}


class TestSimulatorChunkIdentity:
    """Sample-path identity at the simulator level: the chunked pass
    replays the exact legacy draw order, so every array matches to the
    last bit, not just the summaries."""

    @pytest.mark.parametrize("chunk", [1, 7, 250, 10_000])
    def test_sample_paths_bit_identical(self, chunk):
        topo = _topology()
        whole = simulate_service_interval(
            topo, BasicPolicy(), 120.0, 5.0, _dists(topo),
            np.random.default_rng(42),
        )
        piecewise = simulate_service_interval(
            topo, BasicPolicy(), 120.0, 5.0, _dists(topo),
            np.random.default_rng(42), chunk_requests=chunk,
        )
        assert (
            piecewise.request_latencies.tobytes()
            == whole.request_latencies.tobytes()
        )
        for name in whole.component_sojourns:
            assert (
                piecewise.component_sojourns[name].tobytes()
                == whole.component_sojourns[name].tobytes()
            )


class TestDESStreamParity:
    """The event-driven simulator's streamed path: identical event
    sequence, samples folded into accumulators instead of kept."""

    def _pair(self, classes=None):
        topo = _topology()
        exact = DESServiceSimulator(
            topo, _dists(topo), np.random.default_rng(3)
        ).run(60.0, 20.0, classes=classes)
        rngs = RngRegistry(5)
        stream = IntervalAccumulatorSet.create(
            rng_for=lambda role: rngs.get(f"estimator-{role}"),
            class_names=None if classes is None else classes.names,
        )
        streamed = DESServiceSimulator(
            topo, _dists(topo), np.random.default_rng(3)
        ).run(60.0, 20.0, classes=classes, stream_into=stream)
        return exact, streamed, stream

    def test_counts_mean_max_exact(self):
        exact, streamed, stream = self._pair()
        assert streamed.streaming is stream
        assert streamed.completed == exact.completed
        assert stream.overall.n == exact.request_latencies.size
        assert stream.overall.mean == pytest.approx(
            float(exact.request_latencies.mean()), rel=1e-12
        )
        assert (
            stream.component_pool.n
            == exact.pooled_component_latencies().size
        )
        s = stream.overall.summary()
        assert s.max == pytest.approx(
            float(exact.request_latencies.max()), rel=1e-6
        )

    def test_small_run_percentiles_match_exact_kernel(self):
        # Fewer observations than the reservoir capacity: the reservoir
        # keeps *everything*, so percentiles agree with the exact
        # nearest-rank kernel up to float32 storage rounding.
        exact, _, stream = self._pair()
        assert exact.request_latencies.size < 16384
        s = stream.overall.summary()
        assert s.p99 == pytest.approx(
            percentile(exact.request_latencies, 99), rel=1e-6
        )
        assert s.p50 == pytest.approx(
            percentile(exact.request_latencies, 50), rel=1e-6
        )

    def test_streamed_outcome_guards_sample_accessors(self):
        _, streamed, _ = self._pair()
        assert streamed.request_latencies.size == 0
        with pytest.raises(SimulationError):
            streamed.pooled_component_latencies()
        with pytest.raises(SimulationError):
            streamed.per_class_latencies()


class TestStreamingRunnerMode:
    """End-to-end streaming summaries: honest numbers, honest label."""

    @pytest.fixture(scope="class")
    def pair(self):
        return _run("nutch-search"), _run(
            "nutch-search", summary_mode="streaming"
        )

    def test_provenance_recorded_and_round_trips(self, pair):
        _, streamed = pair
        assert streamed.summary_mode == "streaming"
        assert streamed.metrics_dict()["summary_mode"] == "streaming"
        assert PolicyResult.from_dict(streamed.to_dict()) == streamed

    def test_exact_fields_agree_with_exact_run(self, pair):
        exact, streamed = pair
        assert streamed.n_requests == exact.n_requests
        assert streamed.overall_latency.n == exact.overall_latency.n
        assert streamed.overall_latency.mean == pytest.approx(
            exact.overall_latency.mean, rel=1e-9
        )
        assert streamed.overall_latency.max == pytest.approx(
            exact.overall_latency.max, rel=1e-6
        )
        assert streamed.per_interval_overall_mean == pytest.approx(
            exact.per_interval_overall_mean, rel=1e-9
        )

    def test_small_run_percentiles_match_exact_run(self, pair):
        # Below reservoir capacity the estimates equal the exact
        # percentiles up to float32 rounding (see the DES twin above).
        exact, streamed = pair
        assert streamed.overall_latency.p99 == pytest.approx(
            exact.overall_latency.p99, rel=1e-6
        )
        assert streamed.component_latency.p99 == pytest.approx(
            exact.component_latency.p99, rel=1e-6
        )

    def test_auto_resolves_by_expected_interval_requests(self):
        # 30 req/s × 4 s = 120 expected requests: a threshold below
        # that flips auto to streaming, the default (10⁶) keeps exact.
        streamed = _run("nutch-search", streaming_threshold=100)
        assert streamed.summary_mode == "streaming"
        assert _baseline("nutch-search").summary_mode is None

    def test_mixed_class_streaming_keeps_per_class_split(self):
        exact = _baseline("mixed-frontend")
        streamed = _run("mixed-frontend", summary_mode="streaming")
        assert streamed.per_class is not None
        assert set(streamed.per_class) == set(exact.per_class)
        for name, summary in streamed.per_class.items():
            assert summary.n == exact.per_class[name].n
            assert summary.mean == pytest.approx(
                exact.per_class[name].mean, rel=1e-9
            )


class TestAggregateModeGuard:
    def test_mixed_modes_in_one_cell_rejected(self):
        exact = _baseline("nutch-search")
        streamed = dataclasses.replace(exact, summary_mode="streaming")
        with pytest.raises(ExperimentError, match="summary modes"):
            SeedAggregate.from_results(
                exact.policy_name,
                exact.arrival_rate,
                {0: exact, 1: streamed},
            )

    def test_uniform_mode_cell_accepted(self):
        streamed = dataclasses.replace(
            _baseline("nutch-search"), summary_mode="streaming"
        )
        agg = SeedAggregate.from_results(
            streamed.policy_name,
            streamed.arrival_rate,
            {0: streamed, 1: dataclasses.replace(streamed)},
        )
        assert agg.seeds == (0, 1)
