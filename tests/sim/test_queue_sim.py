"""Tests for the vectorised interval simulator and its policy mechanics."""

import numpy as np
import pytest

from repro.baselines.policies import (
    BasicPolicy,
    PCSPolicy,
    REDPolicy,
    ReissuePolicy,
)
from repro.errors import SimulationError
from repro.model.queueing import mg1_latency
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.sim.queue_sim import poisson_arrivals, simulate_service_interval
from repro.simcore.distributions import Exponential, LogNormal
from repro.units import ms


def _topology(n_groups=4, replicas=3, mean=ms(6), scv=1.0):
    def comp(g, r):
        return Component(
            name=f"s-g{g}-r{r}",
            cls=ComponentClass.SEARCHING,
            base_service=LogNormal(mean, scv) if scv != 1.0 else Exponential(mean),
        )

    stage = Stage(
        "searching",
        [
            ReplicaGroup(f"g{g}", [comp(g, r) for r in range(replicas)])
            for g in range(n_groups)
        ],
    )
    return ServiceTopology([stage])


def _dists(topology, mean=None):
    return {
        c.name: (c.base_service if mean is None else c.base_service.with_mean(mean))
        for c in topology.components
    }


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestPoissonArrivals:
    def test_count_concentrates(self, rng):
        counts = [poisson_arrivals(100.0, 10.0, rng).size for _ in range(200)]
        assert np.mean(counts) == pytest.approx(1000, rel=0.02)

    def test_sorted_within_window(self, rng):
        t = poisson_arrivals(50.0, 5.0, rng)
        assert np.all(np.diff(t) >= 0)
        assert t.min() >= 0 and t.max() < 5.0

    def test_invalid_rejected(self, rng):
        with pytest.raises(SimulationError):
            poisson_arrivals(-1.0, 5.0, rng)
        with pytest.raises(SimulationError):
            poisson_arrivals(1.0, 0.0, rng)


class TestBasicPolicy:
    def test_matches_mg1_prediction(self, rng):
        """Basic routing on R replicas: each replica is an M/G/1 queue at
        lambda/R — the sample path must agree with Eq. 2."""
        topo = _topology(n_groups=1, replicas=4, scv=1.0)
        lam = 200.0
        out = simulate_service_interval(
            topo, BasicPolicy(), lam, 400.0, _dists(topo), rng
        )
        predicted = mg1_latency(ms(6), 1.0, lam / 4)
        measured = out.pooled_component_latencies().mean()
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_overall_is_max_over_groups(self, rng):
        topo = _topology(n_groups=5, replicas=2)
        out = simulate_service_interval(
            topo, BasicPolicy(), 50.0, 100.0, _dists(topo), rng
        )
        # With 5 groups the overall (single stage) is a max of 5 draws:
        # strictly larger on average than any single component sojourn.
        assert out.request_latencies.mean() > out.pooled_component_latencies().mean()

    def test_multi_stage_sums(self, rng):
        s1 = Stage(
            "a",
            [
                ReplicaGroup(
                    "a0",
                    [
                        Component(
                            name="a0r0",
                            cls=ComponentClass.GENERIC,
                            base_service=Exponential(ms(2)),
                        )
                    ],
                )
            ],
        )
        s2 = Stage(
            "b",
            [
                ReplicaGroup(
                    "b0",
                    [
                        Component(
                            name="b0r0",
                            cls=ComponentClass.GENERIC,
                            base_service=Exponential(ms(3)),
                        )
                    ],
                )
            ],
        )
        topo = ServiceTopology([s1, s2])
        out = simulate_service_interval(
            topo, BasicPolicy(), 20.0, 200.0, _dists(topo), rng
        )
        expected = mg1_latency(ms(2), 1.0, 20.0) + mg1_latency(ms(3), 1.0, 20.0)
        assert out.request_latencies.mean() == pytest.approx(expected, rel=0.08)

    def test_random_primary_balances_load(self, rng):
        topo = _topology(n_groups=1, replicas=4)
        out = simulate_service_interval(
            topo, BasicPolicy(), 100.0, 100.0, _dists(topo), rng
        )
        counts = np.array(
            [out.component_sojourns[c.name].size for c in topo.components]
        )
        # Uniform random split: each replica within a few sigma of n/4.
        expected = out.n_requests / 4
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))

    def test_pcs_routes_like_basic(self, rng):
        topo = _topology(n_groups=2, replicas=2)
        out_b = simulate_service_interval(
            topo, BasicPolicy(), 50.0, 50.0, _dists(topo),
            np.random.default_rng(5),
        )
        out_p = simulate_service_interval(
            topo, PCSPolicy(), 50.0, 50.0, _dists(topo),
            np.random.default_rng(5),
        )
        np.testing.assert_allclose(
            out_b.request_latencies, out_p.request_latencies
        )

    def test_zero_requests_edge(self):
        topo = _topology(n_groups=1, replicas=2)
        out = simulate_service_interval(
            topo, BasicPolicy(), 0.001, 0.1, _dists(topo),
            np.random.default_rng(0),
        )
        assert out.n_requests == out.request_latencies.size

    def test_missing_dist_rejected(self, rng):
        topo = _topology()
        dists = _dists(topo)
        dists.pop(topo.components[0].name)
        with pytest.raises(SimulationError):
            simulate_service_interval(topo, BasicPolicy(), 10.0, 10.0, dists, rng)


class TestREDPolicy:
    def test_red_helps_at_light_load(self, rng):
        """min-of-k beats one sample when queues are empty."""
        topo = _topology(n_groups=2, replicas=5, scv=1.0)
        basic = simulate_service_interval(
            topo, BasicPolicy(), 5.0, 600.0, _dists(topo),
            np.random.default_rng(1),
        )
        red = simulate_service_interval(
            topo, REDPolicy(replicas=3), 5.0, 600.0, _dists(topo),
            np.random.default_rng(1),
        )
        assert red.request_latencies.mean() < basic.request_latencies.mean()

    def test_red_hurts_at_heavy_load(self, rng):
        """Replication multiplies load; at high rho RED must lose."""
        topo = _topology(n_groups=2, replicas=5, scv=1.0)
        lam = 400.0  # basic per-replica rho ~ 0.48; RED-5 rho ~ 2.4
        basic = simulate_service_interval(
            topo, BasicPolicy(), lam, 120.0, _dists(topo),
            np.random.default_rng(2),
        )
        red = simulate_service_interval(
            topo, REDPolicy(replicas=5), lam, 120.0, _dists(topo),
            np.random.default_rng(2),
        )
        assert red.request_latencies.mean() > 2 * basic.request_latencies.mean()

    def test_red5_worse_than_red3_at_heavy_load(self):
        topo = _topology(n_groups=2, replicas=5, scv=1.0)
        lam = 400.0
        red3 = simulate_service_interval(
            topo, REDPolicy(replicas=3), lam, 120.0, _dists(topo),
            np.random.default_rng(3),
        )
        red5 = simulate_service_interval(
            topo, REDPolicy(replicas=5), lam, 120.0, _dists(topo),
            np.random.default_rng(3),
        )
        assert red5.request_latencies.mean() > red3.request_latencies.mean()

    def test_cancellation_saves_queued_copies_only(self):
        """Cancellation fires when a sibling *begins execution* (§VI-C),
        so it can only save copies still queued: at light load all k
        copies start immediately (the paper's simultaneous-start leak),
        while under queueing many duplicates are cancelled."""
        topo = _topology(n_groups=1, replicas=3, scv=1.0)

        def executed_per_request(lam):
            out = simulate_service_interval(
                topo,
                REDPolicy(replicas=3, cancel_delay_s=0.0),
                lam,
                200.0,
                _dists(topo),
                np.random.default_rng(4),
            )
            executed = sum(
                np.count_nonzero(s)
                for s in out.component_service_samples.values()
            )
            return executed / out.n_requests

        light, heavy = executed_per_request(20.0), executed_per_request(80.0)
        assert light > 2.0  # idle queues: nearly all 3 copies run
        assert heavy < light  # queueing lets cancellation bite
        assert heavy >= 1.0  # the winner always executes

    def test_imperfect_cancellation_leaks_more(self):
        topo = _topology(n_groups=1, replicas=3, scv=1.0)

        def executed_with(delay):
            out = simulate_service_interval(
                topo,
                REDPolicy(replicas=3, cancel_delay_s=delay),
                30.0,
                300.0,
                _dists(topo),
                np.random.default_rng(5),
            )
            return sum(
                np.count_nonzero(s)
                for s in out.component_service_samples.values()
            ) / out.n_requests

        assert executed_with(0.05) > executed_with(0.0)

    def test_red_latency_not_above_single_copy(self):
        """Each request's RED latency is min over copies, so it can't
        exceed the copy that would have served it alone... statistically:
        p99 under light load must not be worse than Basic."""
        topo = _topology(n_groups=1, replicas=5)
        basic = simulate_service_interval(
            topo, BasicPolicy(), 2.0, 1000.0, _dists(topo),
            np.random.default_rng(6),
        )
        red = simulate_service_interval(
            topo, REDPolicy(replicas=3), 2.0, 1000.0, _dists(topo),
            np.random.default_rng(6),
        )
        assert np.percentile(red.request_latencies, 99) < np.percentile(
            basic.request_latencies, 99
        )


class TestReissuePolicy:
    def test_reissue_reduces_tail_at_light_load(self):
        topo = _topology(n_groups=2, replicas=4, scv=2.0)
        basic = simulate_service_interval(
            topo, BasicPolicy(), 10.0, 600.0, _dists(topo),
            np.random.default_rng(7),
        )
        ri = simulate_service_interval(
            topo, ReissuePolicy(quantile=0.90), 10.0, 600.0, _dists(topo),
            np.random.default_rng(7),
        )
        assert np.percentile(ri.request_latencies, 99) < np.percentile(
            basic.request_latencies, 99
        )

    def test_ri99_reissues_less_than_ri90(self):
        topo = _topology(n_groups=1, replicas=4)

        def executed(quantile):
            out = simulate_service_interval(
                topo, ReissuePolicy(quantile=quantile), 50.0, 200.0,
                _dists(topo), np.random.default_rng(8),
            )
            return sum(
                s.size for s in out.component_service_samples.values()
            ) / out.n_requests

        # RI-90 reissues ~10% of requests, RI-99 ~1%.
        assert executed(0.99) < executed(0.90)
        assert executed(0.90) == pytest.approx(1.10, abs=0.04)

    def test_reissue_milder_than_red_at_heavy_load(self):
        """The paper: 'this conservative reissue technique causes less
        performance deterioration when load becomes heavier'."""
        topo = _topology(n_groups=2, replicas=5)
        lam = 400.0
        red = simulate_service_interval(
            topo, REDPolicy(replicas=3), lam, 120.0, _dists(topo),
            np.random.default_rng(9),
        )
        ri = simulate_service_interval(
            topo, ReissuePolicy(quantile=0.90), lam, 120.0, _dists(topo),
            np.random.default_rng(9),
        )
        assert ri.request_latencies.mean() < red.request_latencies.mean()

    def test_single_replica_group_degenerates_to_basic(self):
        topo = _topology(n_groups=2, replicas=1)
        basic = simulate_service_interval(
            topo, BasicPolicy(), 20.0, 100.0, _dists(topo),
            np.random.default_rng(10),
        )
        ri = simulate_service_interval(
            topo, ReissuePolicy(quantile=0.90), 20.0, 100.0, _dists(topo),
            np.random.default_rng(10),
        )
        np.testing.assert_allclose(basic.request_latencies, ri.request_latencies)


class TestOutcomeBookkeeping:
    def test_every_component_has_samples_under_basic(self, rng):
        topo = _topology(n_groups=2, replicas=2)
        out = simulate_service_interval(
            topo, BasicPolicy(), 50.0, 60.0, _dists(topo), rng
        )
        for c in topo.components:
            assert out.component_sojourns[c.name].size > 0
            assert out.component_service_samples[c.name].size > 0

    def test_pooled_size_matches_routing(self, rng):
        topo = _topology(n_groups=3, replicas=2)
        out = simulate_service_interval(
            topo, BasicPolicy(), 40.0, 60.0, _dists(topo), rng
        )
        # One sojourn per (request, group) under Basic.
        assert out.pooled_component_latencies().size == 3 * out.n_requests

    def test_deterministic_given_rng(self):
        topo = _topology()
        a = simulate_service_interval(
            topo, BasicPolicy(), 30.0, 30.0, _dists(topo),
            np.random.default_rng(11),
        )
        b = simulate_service_interval(
            topo, BasicPolicy(), 30.0, 30.0, _dists(topo),
            np.random.default_rng(11),
        )
        np.testing.assert_array_equal(a.request_latencies, b.request_latencies)
