"""Distributed sweep backend: spool protocol, codec, and identity.

Tier-1 tests run the worker loop in-thread (everything is file-based,
so a thread is protocol-identical to a remote process and keeps the
suite fast).  Tier-2 adds real ``python -m repro.worker`` subprocesses
and SIGKILL fault injection; the cross-backend identity matrix in
``test_sweep_manifest.py`` carries the distributed axis.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

import repro
from repro.baselines.policies import (
    BasicPolicy,
    HedgedPolicy,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
)
from repro.errors import (
    ConfigurationError,
    SpoolError,
    SweepExecutionError,
)
from repro.service.nutch import NutchConfig
from repro.sim.backends import (
    DISTRIBUTED_POINT_CUTOFF_S,
    auto_backend,
    backend_from_name,
)
from repro.sim.distributed import (
    DEFAULT_LEASE_S,
    SPOOL_SCHEMA_VERSION,
    DistributedBackend,
    SweepSpool,
    clear_stop,
    decode_task,
    encode_task,
    register_codec_class,
    request_stop,
    run_worker,
)
from repro.sim.runner import RunnerConfig
from repro.sim.sweep import (
    ParallelSweepRunner,
    SweepCache,
    SweepSpec,
    _canonical,
)
from repro.workloads.generator import GeneratorConfig


@register_codec_class
@dataclass(frozen=True)
class SpoolExplodingPolicy(Policy):
    """Fails during setup; registered so it round-trips the spool."""

    name: str = "SpoolExploding"

    def induced_load(self):
        raise RuntimeError("deliberate spool-point failure")


def _tiny_base(**overrides) -> RunnerConfig:
    kwargs = dict(
        n_nodes=6,
        arrival_rate=40.0,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=0,
        nutch=NutchConfig(
            n_search_groups=3, replicas_per_group=2,
            n_segmenters=1, n_aggregators=1,
        ),
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.02, max_batch_jobs_per_node=3
        ),
        n_profiling_conditions=8,
    )
    kwargs.update(overrides)
    return RunnerConfig(**kwargs)


def _tiny_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        base=_tiny_base(),
        policies=(BasicPolicy(), REDPolicy(replicas=2)),
        arrival_rates=(30.0, 70.0),
        seeds=(0, 1),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class _WorkerThread:
    """An in-thread spool worker with clean start/stop semantics."""

    def __init__(self, spool, **kwargs):
        self.spool = spool
        kwargs.setdefault("poll_interval_s", 0.02)
        self.thread = threading.Thread(
            target=run_worker, args=(spool,), kwargs=kwargs, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        request_stop(self.spool)
        self.thread.join(timeout=30)
        clear_stop(self.spool)
        assert not self.thread.is_alive(), "worker thread failed to drain"


# Serial baseline shared by the identity tests (computed once).
_SERIAL: dict = {}


def _serial_run():
    if "run" not in _SERIAL:
        _SERIAL["run"] = ParallelSweepRunner(
            _tiny_spec(), backend="serial"
        ).run()
    return _SERIAL["run"]


class TestTaskCodec:
    """encode_task/decode_task must be a lossless inverse pair."""

    @pytest.mark.parametrize(
        "policy",
        [
            BasicPolicy(),
            REDPolicy(replicas=3),
            ReissuePolicy(quantile=0.95),
            HedgedPolicy(hedge_delay_s=0.05),
            PCSPolicy(),
            SpoolExplodingPolicy(),
        ],
        ids=lambda p: p.name,
    )
    def test_round_trip_every_policy(self, policy):
        config = _tiny_base(chunk_requests=64)
        entry = encode_task(7, (config, policy))
        # The wire format is genuinely JSON-able.
        entry = json.loads(json.dumps(entry))
        decoded_config, decoded_policy = decode_task(entry)
        assert decoded_config == config
        assert decoded_policy == policy
        # And canonical (cache-key) equality, the sweep's own currency.
        assert _canonical(decoded_config) == _canonical(config)
        assert _canonical(decoded_policy) == _canonical(policy)
        assert entry["index"] == 7

    def test_unknown_class_is_a_named_error(self):
        entry = encode_task(0, (_tiny_base(), BasicPolicy()))
        entry["policy"]["__class__"] = "NoSuchPolicy"
        with pytest.raises(SpoolError, match="NoSuchPolicy"):
            decode_task(entry)

    def test_tampered_payload_fails_validation(self):
        # Decoding re-runs __post_init__: a payload edited into an
        # invalid config must fail loudly, not simulate garbage.
        entry = encode_task(0, (_tiny_base(), BasicPolicy()))
        entry["config"]["n_intervals"] = -5
        with pytest.raises(SpoolError, match="RunnerConfig"):
            decode_task(entry)

    def test_missing_payload_keys(self):
        with pytest.raises(SpoolError, match="config/policy"):
            decode_task({"index": 0})

    def test_register_rejects_non_dataclass(self):
        with pytest.raises(ConfigurationError):
            register_codec_class(dict)


class TestSpoolProtocol:
    def test_ensure_creates_layout_and_stamp(self, tmp_path):
        spool = SweepSpool(tmp_path / "spool").ensure()
        for d in (
            spool.jobs_dir,
            spool.claims_dir,
            spool.results_dir,
            spool.workers_dir,
        ):
            assert d.is_dir()
        meta = json.loads(spool.meta_path.read_text())
        assert meta["schema_version"] == SPOOL_SCHEMA_VERSION
        # Idempotent.
        SweepSpool(tmp_path / "spool").ensure()

    def test_version_mismatch_refuses_to_open(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        spool.meta_path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(SpoolError, match="schema"):
            SweepSpool(tmp_path).ensure()

    def test_claim_is_exclusive(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        entry = encode_task(0, (_tiny_base(), BasicPolicy()))
        spool.submit_job("run-000000", "run", [entry])
        assert spool.pending_jobs() == ["run-000000"]
        wins = []
        barrier = threading.Barrier(4)

        def race():
            barrier.wait()
            claimed = spool.claim("run-000000")
            if claimed is not None:
                wins.append(claimed)

        threads = [threading.Thread(target=race) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert wins[0]["claim"]["pid"] == os.getpid()
        assert spool.pending_jobs() == []

    def test_reclaim_stale_redispatches(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        entry = encode_task(0, (_tiny_base(), BasicPolicy()))
        spool.submit_job("run-000000", "run", [entry])
        payload = spool.claim("run-000000")
        # A live same-host claim is not stale.
        assert spool.reclaim_stale("run", lease_s=30.0) == 0
        # Forge abandonment: remote host, heartbeat far past the lease.
        payload["claim"]["host"] = "some-other-host"
        payload["claim"]["heartbeat"] = time.time() - 1e6
        spool._atomic_write(spool.claims_dir / "run-000000.json", payload)
        assert spool.reclaim_stale("run", lease_s=30.0) == 1
        assert spool.pending_jobs() == ["run-000000"]
        assert not (spool.claims_dir / "run-000000.json").exists()
        # The re-dispatched job carries the original tasks.
        job = json.loads((spool.jobs_dir / "run-000000.json").read_text())
        assert job["tasks"] == [entry]
        assert "claim" not in job

    def test_reclaim_spares_finished_then_died_worker(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        entry = encode_task(0, (_tiny_base(), BasicPolicy()))
        spool.submit_job("run-000000", "run", [entry])
        payload = spool.claim("run-000000")
        spool.write_result("run-000000", {"status": "ok", "results": []})
        payload["claim"]["host"] = "some-other-host"
        payload["claim"]["heartbeat"] = time.time() - 1e6
        spool._atomic_write(spool.claims_dir / "run-000000.json", payload)
        # Result exists: the claim is dropped, nothing re-dispatched.
        assert spool.reclaim_stale("run", lease_s=30.0) == 0
        assert spool.pending_jobs() == []
        assert not (spool.claims_dir / "run-000000.json").exists()
        assert spool.read_result("run-000000") is not None

    def test_cancel_run_scopes_to_the_run_id(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        entry = encode_task(0, (_tiny_base(), BasicPolicy()))
        spool.submit_job("aaa-000000", "aaa", [entry])
        spool.submit_job("bbb-000000", "bbb", [entry])
        spool.write_result("aaa-000001", {"status": "ok", "results": []})
        spool.cancel_run("aaa")
        assert spool.pending_jobs() == ["bbb-000000"]
        assert spool.read_result("aaa-000001") is None

    def test_gc_reaps_stale_artifacts_spares_live(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        entry = encode_task(0, (_tiny_base(), BasicPolicy()))
        # Live claim (this pid) and an expired remote claim.
        spool.submit_job("run-000000", "run", [entry])
        live = spool.claim("run-000000")
        assert live is not None
        spool.submit_job("run-000001", "run", [entry])
        stale = spool.claim("run-000001")
        stale["claim"]["host"] = "some-other-host"
        stale["claim"]["heartbeat"] = time.time() - 1e6
        spool._atomic_write(spool.claims_dir / "run-000001.json", stale)
        # Live worker presence (this pid) and a dead remote one.
        spool.register_worker()
        spool._atomic_write(
            spool.workers_dir / "other-host-1.json",
            {"pid": 1, "host": "some-other-host", "heartbeat": 0.0},
        )
        # Orphaned temp file from a (certainly dead) pid.
        orphan = spool.jobs_dir / "x.json.tmp-999999999"
        orphan.write_text("{}")
        mine = spool.results_dir / f"y.json.tmp-{os.getpid()}"
        mine.write_text("{}")

        removed = spool.gc(lease_s=30.0)

        assert (spool.claims_dir / "run-000000.json").exists()
        assert not (spool.claims_dir / "run-000001.json").exists()
        assert spool.worker_path().exists()
        assert not (spool.workers_dir / "other-host-1.json").exists()
        assert not orphan.exists()
        assert mine.exists()  # live-pid-spared
        assert {p.name for p in removed} == {
            "run-000001.json",
            "other-host-1.json",
            "x.json.tmp-999999999",
        }

    def test_sweep_cache_gc_delegates_to_spool(self, tmp_path):
        # gc needs a manifest, so complete a one-point sweep first.
        spec = _tiny_spec(
            policies=(BasicPolicy(),), arrival_rates=(30.0,), seeds=(0,)
        )
        cache = SweepCache(tmp_path / "cache")
        ParallelSweepRunner(spec, cache=cache, backend="serial").run()
        spool = SweepSpool(tmp_path / "spool").ensure()
        orphan = spool.root / "z.tmp-999999999"
        orphan.write_text("{}")
        removed = cache.gc(spool=spool.root)
        assert orphan in removed
        assert not orphan.exists()

    def test_stop_sentinel_round_trip(self, tmp_path):
        request_stop(tmp_path)
        assert SweepSpool(tmp_path).stop_requested()
        # A stopped spool's worker exits without executing anything.
        assert run_worker(tmp_path, poll_interval_s=0.01) == 0
        clear_stop(tmp_path)
        assert not SweepSpool(tmp_path).stop_requested()


class TestWorkerLoop:
    def test_stop_when_idle_drains_and_reports_count(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        for i in range(2):
            spool.submit_job(
                f"run-{i:06d}",
                "run",
                [encode_task(i, (_tiny_base(), BasicPolicy()))],
            )
        executed = run_worker(
            spool, poll_interval_s=0.01, stop_when_idle=True
        )
        assert executed == 2
        assert spool.pending_jobs() == []
        assert spool.read_result("run-000000")["status"] == "ok"
        # Presence file removed on exit.
        assert not spool.worker_path().exists()

    def test_max_jobs_bounds_the_loop(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        for i in range(3):
            spool.submit_job(
                f"run-{i:06d}",
                "run",
                [encode_task(i, (_tiny_base(), BasicPolicy()))],
            )
        assert run_worker(spool, poll_interval_s=0.01, max_jobs=1) == 1
        assert len(spool.pending_jobs()) == 2

    def test_worker_reports_task_failure_as_error_result(self, tmp_path):
        spool = SweepSpool(tmp_path).ensure()
        spool.submit_job(
            "run-000000",
            "run",
            [
                encode_task(0, (_tiny_base(), SpoolExplodingPolicy())),
                encode_task(1, (_tiny_base(), BasicPolicy())),
            ],
        )
        run_worker(spool, poll_interval_s=0.01, stop_when_idle=True)
        result = spool.read_result("run-000000")
        assert result["status"] == "error"
        assert result["index"] == 0
        assert "deliberate spool-point failure" in result["error"]
        # First failure aborts the rest of the chunk (_run_chunk
        # semantics): no partial results ride along.
        assert "results" not in result


class TestDistributedBackend:
    def test_rejects_arbitrary_callables(self, tmp_path):
        backend = DistributedBackend(tmp_path)
        with pytest.raises(ConfigurationError, match="arbitrary"):
            list(backend.imap_unordered(len, ["ab"]))

    def test_wait_workers_timeout_is_a_named_error(self, tmp_path):
        spec = _tiny_spec(seeds=(0,))
        backend = DistributedBackend(
            tmp_path,
            wait_workers=1,
            wait_timeout_s=0.2,
            poll_interval_s=0.05,
        )
        with pytest.raises(SpoolError, match="python -m repro.worker"):
            ParallelSweepRunner(spec, backend=backend).run()

    def test_end_to_end_bit_identical_and_clean_spool(self, tmp_path):
        serial = _serial_run()
        spec = _tiny_spec()
        spool = tmp_path / "spool"
        with _WorkerThread(spool):
            distributed = ParallelSweepRunner(
                spec,
                backend=DistributedBackend(
                    spool, chunk_size=3, poll_interval_s=0.02
                ),
            ).run()
        for point in spec.points():
            assert (
                distributed.results[point].metrics_dict()
                == serial.results[point].metrics_dict()
            ), point.describe()
        # Nothing left behind: jobs consumed, results drained.
        s = SweepSpool(spool)
        assert s.pending_jobs() == []
        assert list(s.results_dir.glob("*.json")) == []
        assert list(s.claims_dir.glob("*.json")) == []

    def test_failure_cancels_cached_peers_survive_and_resume(
        self, tmp_path
    ):
        # Grid order puts Basic before the exploding policy, so with a
        # single in-thread worker and chunk_size=1 the Basic points
        # finish (and land in the cache) before the failure surfaces.
        spec = _tiny_spec(
            policies=(BasicPolicy(), SpoolExplodingPolicy()),
            arrival_rates=(30.0,),
            seeds=(0, 1),
        )
        spool = tmp_path / "spool"
        cache = SweepCache(tmp_path / "cache")
        with _WorkerThread(spool):
            with pytest.raises(SweepExecutionError) as err:
                ParallelSweepRunner(
                    spec,
                    cache=cache,
                    backend=DistributedBackend(
                        spool, poll_interval_s=0.02
                    ),
                ).run()
        assert err.value.policy == "SpoolExploding"
        assert "deliberate" in str(err.value)
        assert len(cache) == 2  # the two Basic points
        # Cancel withdrew the run's leftover jobs from the spool.
        assert SweepSpool(spool).pending_jobs() == []
        # A fixed grid resumes from the cached peers without workers.
        fixed = _tiny_spec(
            policies=(BasicPolicy(),), arrival_rates=(30.0,), seeds=(0, 1)
        )
        resumed = ParallelSweepRunner(
            fixed, cache=cache, backend="serial"
        ).run()
        assert resumed.cache_hits == 2

    def test_coordinator_reclaims_forged_stale_claim(self, tmp_path):
        # Protocol-level fault injection without processes: before any
        # real worker starts, a rogue claimer steals every dispatched
        # job and abandons it with an expired remote heartbeat; the
        # coordinator must reclaim and still finish bit-identically.
        spec = _tiny_spec(seeds=(0,), arrival_rates=(30.0,))
        serial = _serial_run()
        spool = SweepSpool(tmp_path / "spool").ensure()
        backend = DistributedBackend(
            spool, lease_s=0.5, poll_interval_s=0.02
        )
        n_jobs = len(spec.points())  # chunk_size=1: one job per point

        def steal_everything():
            stolen = 0
            deadline = time.monotonic() + 60
            while stolen < n_jobs and time.monotonic() < deadline:
                for job_id in spool.pending_jobs():
                    payload = spool.claim(job_id)
                    if payload is None:
                        continue
                    payload["claim"]["host"] = "rogue-host"
                    payload["claim"]["heartbeat"] = time.time() - 1e6
                    spool._atomic_write(
                        spool.claims_dir / f"{job_id}.json", payload
                    )
                    stolen += 1
                time.sleep(0.005)
            return stolen

        box = {}
        coordinator = threading.Thread(
            target=lambda: box.update(
                run=ParallelSweepRunner(spec, backend=backend).run()
            ),
            daemon=True,
        )
        coordinator.start()
        # No worker is running yet, so the thief wins every claim race.
        assert steal_everything() == n_jobs
        with _WorkerThread(spool):
            coordinator.join(timeout=120)
        assert not coordinator.is_alive(), "coordinator never finished"
        assert backend.reclaimed >= 1
        distributed = box["run"]
        for point in spec.points():
            assert (
                distributed.results[point].metrics_dict()
                == serial.results[point].metrics_dict()
            )


class TestRoutingAndWiring:
    def test_backend_from_name_requires_spool(self, tmp_path):
        with pytest.raises(ConfigurationError, match="spool"):
            backend_from_name("distributed")
        backend = backend_from_name(
            "distributed", spool=tmp_path, chunk_size=4, wait_workers=2
        )
        assert backend.name == "distributed"
        assert backend.chunk_size == 4
        assert backend.wait_workers == 2

    def test_runner_requires_spool_for_distributed(self):
        with pytest.raises(ConfigurationError, match="spool"):
            ParallelSweepRunner(_tiny_spec(), backend="distributed")

    def test_auto_routes_expensive_grids_to_the_spool(self, tmp_path):
        expensive = DISTRIBUTED_POINT_CUTOFF_S * 10
        backend = auto_backend(
            n_tasks=16,
            workers=4,
            est_cost_s=expensive,
            spool=tmp_path,
            wait_workers=2,
        )
        assert backend.name == "distributed"
        assert backend.wait_workers == 2
        # The auto chunk amortises the *network* tax, not spawn: at
        # est >= cutoff a single point already dwarfs the dispatch
        # write, so points ship unbatched.
        assert backend.chunk_size == 1

    def test_auto_keeps_cheap_grids_local(self, tmp_path):
        cheap = DISTRIBUTED_POINT_CUTOFF_S / 100
        assert (
            auto_backend(
                n_tasks=16, workers=4, est_cost_s=cheap, spool=tmp_path
            ).name
            != "distributed"
        )
        # A single task never travels either.
        assert (
            auto_backend(
                n_tasks=1,
                workers=4,
                est_cost_s=DISTRIBUTED_POINT_CUTOFF_S * 10,
                spool=tmp_path,
            ).name
            != "distributed"
        )
        # And no spool means no distributed routing, whatever the cost.
        assert (
            auto_backend(
                n_tasks=16,
                workers=4,
                est_cost_s=DISTRIBUTED_POINT_CUTOFF_S * 10,
            ).name
            != "distributed"
        )

    def test_aggregate_rejects_distributed_backend(self, tmp_path):
        from repro.sim.aggregate import SweepSummary

        spec = _tiny_spec(
            policies=(BasicPolicy(),), arrival_rates=(30.0,), seeds=(0,)
        )
        cache = SweepCache(tmp_path / "cache")
        ParallelSweepRunner(spec, cache=cache, backend="serial").run()
        with pytest.raises(ConfigurationError, match="cache"):
            SweepSummary.from_cache(
                cache, backend=DistributedBackend(tmp_path / "spool")
            )


class TestWorkerCLI:
    def test_stop_flag_writes_sentinel(self, tmp_path, capsys):
        from repro.worker import main

        assert main([str(tmp_path), "--stop"]) == 0
        assert SweepSpool(tmp_path).stop_requested()
        assert main([str(tmp_path), "--clear-stop"]) == 0
        assert not SweepSpool(tmp_path).stop_requested()

    def test_stop_when_idle_run_exits_zero(self, tmp_path, capsys):
        from repro.worker import main

        assert main([str(tmp_path), "--stop-when-idle"]) == 0
        assert "0 job(s)" in capsys.readouterr().out

    def test_repro_cli_worker_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["worker", str(tmp_path), "--stop"]) == 0
        assert SweepSpool(tmp_path).stop_requested()
        assert (
            main(["worker", str(tmp_path), "--stop-when-idle"]) == 0
        )
        assert "0 job(s)" in capsys.readouterr().out

    def test_sweep_cli_distributed_requires_spool(self):
        from repro.cli import main

        # Repo CLI convention: configuration errors from the runner
        # propagate (same as an unknown policy name).
        with pytest.raises(ConfigurationError, match="spool"):
            main(
                [
                    "sweep",
                    "--backend",
                    "distributed",
                    "--policies",
                    "basic",
                    "--rates",
                    "30",
                    "--seeds",
                    "0",
                ]
            )


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (
            str(Path(repro.__file__).resolve().parents[1]),
            env.get("PYTHONPATH", ""),
        )
        if p
    )
    return env


@pytest.mark.tier2
class TestFaultInjection:
    """SIGKILL a worker holding a claim: the lease protocol must
    re-dispatch its job and the sweep still finishes bit-identically."""

    def test_sigkilled_worker_claim_is_reclaimed(self, tmp_path):
        spec = _tiny_spec(seeds=(0,), arrival_rates=(30.0,))
        serial = _serial_run()
        spool = SweepSpool(tmp_path / "spool").ensure()

        # A worker that claims one job and hangs mid-compute, holding
        # the claim with its own (real) pid.
        hang_script = (
            "import sys, time\n"
            "from repro.sim.distributed import SweepSpool\n"
            "spool = SweepSpool(sys.argv[1]).ensure()\n"
            "while True:\n"
            "    for job_id in spool.pending_jobs():\n"
            "        if spool.claim(job_id) is not None:\n"
            "            print('claimed', flush=True)\n"
            "            time.sleep(3600)\n"
            "    time.sleep(0.01)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", hang_script, str(spool.root)],
            env=_worker_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        backend = DistributedBackend(
            spool, lease_s=5.0, poll_interval_s=0.02
        )
        box = {}
        coordinator = threading.Thread(
            target=lambda: box.update(
                run=ParallelSweepRunner(spec, backend=backend).run()
            ),
            daemon=True,
        )
        try:
            coordinator.start()
            # Wait for the hung worker to announce its claim, then
            # SIGKILL it — a same-host dead pid, so the coordinator
            # reclaims without waiting out the lease.
            assert proc.stdout.readline().strip() == "claimed"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            # Only now start a healthy worker to finish the sweep.
            with _WorkerThread(spool):
                coordinator.join(timeout=120)
            assert not coordinator.is_alive(), "coordinator never finished"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert backend.reclaimed >= 1
        distributed = box["run"]
        for point in spec.points():
            assert (
                distributed.results[point].metrics_dict()
                == serial.results[point].metrics_dict()
            ), point.describe()
