"""Tests for sweep-cache provenance: manifest, diff, GC, atomicity,
corruption handling, and cross-backend aggregate identity."""

import dataclasses
import json

import pytest

from repro.baselines.policies import BasicPolicy, REDPolicy
from repro.errors import (
    CacheCorruptionError,
    StaleManifestError,
    SweepCacheError,
)
from repro.service.nutch import NutchConfig
from repro.sim.aggregate import SweepSummary
from repro.sim.runner import RunnerConfig
from repro.sim.sweep import (
    MANIFEST_VERSION,
    ParallelSweepRunner,
    SweepCache,
    SweepSpec,
    point_cache_key,
)


def _tiny_base(**overrides) -> RunnerConfig:
    kwargs = dict(
        n_nodes=6,
        arrival_rate=40.0,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=0,
        nutch=NutchConfig(
            n_search_groups=3, replicas_per_group=2,
            n_segmenters=1, n_aggregators=1,
        ),
        n_profiling_conditions=8,
    )
    kwargs.update(overrides)
    return RunnerConfig(**kwargs)


def _tiny_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        base=_tiny_base(),
        policies=(BasicPolicy(),),
        arrival_rates=(30.0,),
        seeds=(0, 1),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture()
def run_cache(tmp_path):
    """A completed tiny sweep with its cache."""
    spec = _tiny_spec()
    cache = SweepCache(tmp_path)
    result = ParallelSweepRunner(spec, workers=1, cache=cache).run()
    return spec, cache, result


class TestManifest:
    def test_schema_and_point_map(self, run_cache):
        spec, cache, _ = run_cache
        manifest = cache.manifest()
        assert manifest["schema_version"] == MANIFEST_VERSION
        assert manifest["completed"] is not None
        assert manifest["created"] <= manifest["completed"]
        assert set(manifest["points"]) == set(spec.point_keys())
        coords = sorted(
            (p["policy"], p["arrival_rate"], p["seed"])
            for p in manifest["points"].values()
        )
        assert coords == [("Basic", 30.0, 0), ("Basic", 30.0, 1)]
        # Every live key resolves to a point file on disk.
        for key in manifest["points"]:
            assert cache.path_for(key).exists()

    def test_base_config_diff_names_deviations(self, run_cache):
        _, cache, _ = run_cache
        diff = cache.manifest()["base_config_diff"]
        assert diff["n_nodes"] == [30, 6]
        assert diff["nutch.n_search_groups"] == [20, 3]
        # Per-point placeholders are excluded from provenance.
        assert "arrival_rate" not in diff and "seed" not in diff

    def test_rerun_same_grid_keeps_created(self, run_cache):
        spec, cache, _ = run_cache
        created = cache.manifest()["created"]
        ParallelSweepRunner(spec, workers=1, cache=cache).run()
        assert cache.manifest()["created"] == created

    def test_different_grid_rewrites_manifest(self, run_cache):
        _, cache, _ = run_cache
        other = _tiny_spec(arrival_rates=(55.0,))
        cache.begin_manifest(other)
        manifest = cache.manifest()
        assert manifest["spec"]["arrival_rates"] == [55.0]
        assert manifest["completed"] is None

    def test_stale_schema_version_raises_named_error(self, run_cache):
        _, cache, _ = run_cache
        payload = json.loads(cache.manifest_path.read_text())
        payload["schema_version"] = MANIFEST_VERSION + 1
        cache.manifest_path.write_text(json.dumps(payload))
        with pytest.raises(StaleManifestError) as err:
            cache.manifest()
        assert str(cache.manifest_path) in str(err.value)
        assert err.value.path == cache.manifest_path

    def test_garbage_manifest_raises_named_error(self, run_cache):
        _, cache, _ = run_cache
        cache.manifest_path.write_text('{"schema_version": 1,, TRUNCATED')
        with pytest.raises(CacheCorruptionError) as err:
            cache.manifest()
        assert str(cache.manifest_path) in str(err.value)

    def test_absent_manifest_is_none(self, tmp_path):
        assert SweepCache(tmp_path / "fresh").manifest() is None

    def test_corrupt_manifest_never_silently_overwritten(self, run_cache):
        spec, cache, _ = run_cache
        cache.manifest_path.write_text("garbage, not json")
        with pytest.raises(CacheCorruptionError):
            ParallelSweepRunner(spec, workers=1, cache=cache).run()
        # The damaged file is left for the operator to inspect.
        assert cache.manifest_path.read_text() == "garbage, not json"

    def test_stale_schema_manifest_superseded_on_rerun(self, run_cache):
        spec, cache, _ = run_cache
        payload = json.loads(cache.manifest_path.read_text())
        payload["schema_version"] = MANIFEST_VERSION + 1
        cache.manifest_path.write_text(json.dumps(payload))
        ParallelSweepRunner(spec, workers=1, cache=cache).run()
        assert cache.manifest()["schema_version"] == MANIFEST_VERSION

    def test_structurally_broken_manifest_raises_named_error(self, run_cache):
        _, cache, _ = run_cache
        cache.manifest_path.write_text(
            json.dumps({"schema_version": MANIFEST_VERSION})
        )
        with pytest.raises(CacheCorruptionError, match="spec, points"):
            cache.manifest()

    def test_completion_stamp_skipped_for_foreign_grid(self, run_cache):
        # A concurrent sweep over a different grid rewrote the manifest
        # after this sweep began: completing must not stamp *its* grid.
        spec, cache, _ = run_cache
        foreign = _tiny_spec(arrival_rates=(55.0,))
        cache.begin_manifest(foreign)
        manifest = cache.complete_manifest(spec)
        assert manifest["completed"] is None
        # The foreign sweep's own completion still lands.
        assert cache.complete_manifest(foreign)["completed"] is not None


class TestDiff:
    def test_identical_grids_diff_empty(self, run_cache, tmp_path):
        spec, cache, _ = run_cache
        other = SweepCache(tmp_path / "other")
        other.begin_manifest(spec)
        assert cache.diff(other) == {}

    def test_changed_knob_named(self, run_cache, tmp_path):
        spec, cache, _ = run_cache
        changed = dataclasses.replace(
            spec, base=dataclasses.replace(spec.base, n_nodes=9)
        )
        other = SweepCache(tmp_path / "other")
        other.begin_manifest(changed)
        diff = cache.diff(other)
        assert diff == {"base.n_nodes": (6, 9)}
        # Also accepts a raw path and a manifest dict.
        assert cache.diff(other.root) == diff
        assert cache.diff(other.manifest()) == diff

    def test_diff_without_manifest_rejected(self, run_cache, tmp_path):
        _, cache, _ = run_cache
        with pytest.raises(SweepCacheError):
            cache.diff(tmp_path / "empty")
        with pytest.raises(SweepCacheError):
            SweepCache(tmp_path / "empty2").diff(cache)


class TestGC:
    def test_orphans_and_temps_removed_live_points_kept(self, run_cache):
        spec, cache, _ = run_cache
        orphan = cache.path_for("0123456789abcdef0123456789abcdef")
        orphan.write_text("{}")
        # A temp whose writer pid is long dead (way beyond pid_max).
        leftover = cache.root / "deadbeef.tmp-99999999"
        leftover.write_text("partial")
        removed = cache.gc()
        assert sorted(p.name for p in removed) == sorted(
            [orphan.name, leftover.name]
        )
        assert not orphan.exists() and not leftover.exists()
        assert cache.manifest_path.exists()
        assert len(cache) == spec.n_points
        # Everything still loads: GC never touches live entries.
        for key in spec.point_keys():
            assert cache.load(key) is not None

    def test_live_writers_temp_is_spared(self, run_cache):
        import os

        _, cache, _ = run_cache
        in_flight = cache.root / f"deadbeef.tmp-{os.getpid()}"
        in_flight.write_text("partial")  # a concurrent sweep mid-write
        assert in_flight not in cache.gc()
        assert in_flight.exists()
        in_flight.unlink()

    def test_dead_writers_temp_is_reaped(self, run_cache):
        # A pid way beyond any real pid_max: the writer is long gone.
        _, cache, _ = run_cache
        abandoned = cache.root / "cafef00d.tmp-99999999"
        abandoned.write_text("torn bytes")
        assert abandoned in cache.gc()
        assert not abandoned.exists()

    @pytest.mark.parametrize("suffix", ["garbage", "12x34", ""])
    def test_non_numeric_temp_suffix_is_reaped(self, run_cache, suffix):
        # A ``tmp-`` suffix that is not a pid cannot belong to a live
        # atomic write (our writers always embed one), so it is swept
        # rather than crashing the pid probe or leaking forever.
        _, cache, _ = run_cache
        stray = cache.root / f"deadbeef.tmp-{suffix}"
        stray.write_text("not ours")
        removed = cache.gc()
        assert stray in removed
        assert not stray.exists()

    def test_gc_requires_manifest(self, tmp_path):
        cache = SweepCache(tmp_path / "no-manifest")
        with pytest.raises(SweepCacheError):
            cache.gc()


class TestCorruptionAndAtomicity:
    def test_truncated_point_file_raises_named_error(self, run_cache):
        spec, cache, _ = run_cache
        key = next(iter(spec.point_keys()))
        path = cache.path_for(key)
        path.write_text(path.read_text()[:40])  # simulate torn content
        with pytest.raises(CacheCorruptionError) as err:
            cache.load(key)
        assert str(path) in str(err.value)

    def test_backend_loads_keep_corruption_error_contract(self, run_cache):
        # from_cache's documented error contract must hold whatever
        # loads the points: a corrupt entry surfaces as the named cache
        # error (with .path), not as the backend's task wrapper.
        from repro.sim.aggregate import SweepSummary
        from repro.sim.backends import ThreadBackend

        spec, cache, _ = run_cache
        key = next(iter(spec.point_keys()))
        cache.path_for(key).write_text("{not json")
        with pytest.raises(CacheCorruptionError) as err:
            SweepSummary.from_cache(cache, backend=ThreadBackend(2))
        assert err.value.path == cache.path_for(key)

    @pytest.mark.tier2
    def test_process_backend_loads_keep_corruption_error_contract(
        self, run_cache
    ):
        # The process pool substitutes a remote-traceback object for
        # the original cause, so the contract must survive without the
        # exception chain (regression: the rebuild path used to key on
        # ``__cause__ is None`` and was unreachable for spawn workers).
        from repro.sim.aggregate import SweepSummary
        from repro.sim.backends import ProcessBackend

        spec, cache, _ = run_cache
        key = next(iter(spec.point_keys()))
        cache.path_for(key).write_text("{not json")
        with pytest.raises(CacheCorruptionError) as err:
            SweepSummary.from_cache(cache, backend=ProcessBackend(2))
        assert err.value.path == cache.path_for(key)

    def test_backend_loads_do_not_mislabel_other_errors(
        self, run_cache, monkeypatch
    ):
        # A permissions problem (or any non-cache failure) on a point
        # file is not corruption: the backend wrapper must surface, not
        # a CacheCorruptionError claiming external damage.
        from repro.errors import WorkerTaskError
        from repro.sim.aggregate import SweepSummary
        from repro.sim.backends import ThreadBackend

        _, cache, _ = run_cache

        def denied(self, key):
            raise PermissionError(f"denied: {key}")

        monkeypatch.setattr(type(cache), "load", denied)
        with pytest.raises(WorkerTaskError) as err:
            SweepSummary.from_cache(cache, backend=ThreadBackend(2))
        assert not isinstance(err.value, CacheCorruptionError)
        assert isinstance(err.value.__cause__, PermissionError)

    def test_undecodable_result_payload_raises_named_error(self, run_cache):
        spec, cache, _ = run_cache
        key = next(iter(spec.point_keys()))
        payload = json.loads(cache.path_for(key).read_text())
        del payload["result"]["overall_latency"]
        cache.path_for(key).write_text(json.dumps(payload))
        with pytest.raises(CacheCorruptionError):
            cache.load(key)

    def test_killed_write_never_poisons_the_cache(
        self, run_cache, monkeypatch
    ):
        """Regression: an interrupted store must leave either the old
        entry or nothing — never a half-written JSON."""
        spec, cache, result = run_cache
        point = spec.points()[0]
        key = point_cache_key(spec.runner_config(point), point.policy)
        good = cache.path_for(key).read_text()

        real_dump = json.dump

        def dying_dump(obj, fh, **kwargs):
            fh.write(json.dumps(obj, **kwargs)[:25])  # half the payload...
            fh.flush()
            raise KeyboardInterrupt("killed mid-write")  # ...then die

        monkeypatch.setattr("repro.sim.sweep.json.dump", dying_dump)
        with pytest.raises(KeyboardInterrupt):
            cache.store(key, point, result.results[point])
        monkeypatch.setattr("repro.sim.sweep.json.dump", real_dump)

        # The completed entry is untouched — the torn bytes only ever
        # reached the temp file, which GC sweeps up once its writer is
        # dead (here: relabel the temp as an expired pid's).
        assert cache.path_for(key).read_text() == good
        assert cache.load(key) is not None
        (torn,) = cache.root.glob("*.tmp-*")
        torn.rename(torn.with_name(f"{key}.tmp-99999999"))
        cache.gc()
        assert not any(cache.root.glob("*.tmp-*"))

        # Resuming serves the intact entry from cache.
        rerun = ParallelSweepRunner(spec, workers=1, cache=cache).run()
        assert rerun.cache_hits == spec.n_points


@pytest.mark.tier2
class TestCrossBackendIdentity:
    """Serial, thread and process execution (chunked or not) and the
    aggregate path must agree bit-for-bit — the sweep subsystem's core
    contract, whatever runs the points."""

    @pytest.fixture(scope="class")
    def grid(self):
        return _tiny_spec(
            policies=(BasicPolicy(), REDPolicy(replicas=2)),
            arrival_rates=(40.0,),
            seeds=(0, 1),
        )

    @pytest.fixture(scope="class")
    def serial(self, grid):
        return ParallelSweepRunner(grid, workers=1, backend="serial").run()

    @pytest.mark.parametrize(
        "backend,workers,chunk_size",
        [
            ("thread", 2, None),
            ("thread", 4, None),
            ("process", 2, None),
            ("process", 4, None),
            ("process", 2, 2),  # chunked: batches of points per task
        ],
        ids=["thread-2", "thread-4", "process-2", "process-4", "process-chunked"],
    )
    def test_backends_bit_identical(
        self, grid, serial, backend, workers, chunk_size, tmp_path
    ):
        parallel = ParallelSweepRunner(
            grid,
            workers=workers,
            cache=tmp_path,
            backend=backend,
            chunk_size=chunk_size,
        ).run()
        for point in grid.points():
            assert (
                parallel.results[point].metrics_dict()
                == serial.results[point].metrics_dict()
            ), f"{backend} workers={workers}: {point.describe()}"
        # The seed-level reduction is identical too — whatever computed
        # the points, and whether they come from memory or the cache.
        assert parallel.summary().to_dict() == serial.summary().to_dict()
        assert (
            SweepSummary.from_cache(SweepCache(tmp_path)).to_dict()
            == serial.summary().to_dict()
        )

    @pytest.mark.parametrize(
        "backend,workers", [("serial", 1), ("process", 2)],
        ids=["serial", "process-2"],
    )
    def test_request_chunking_axis_bit_identical(
        self, grid, serial, backend, workers
    ):
        # The streaming-scale axis: chunked interval execution
        # (RunnerConfig.chunk_requests) must reproduce the unchunked
        # grid byte for byte, whatever backend runs the points.  The
        # grid's RED policy also covers the chunk-incapable-kernel
        # fallback inside a sweep.
        chunked_grid = _tiny_spec(
            base=_tiny_base(chunk_requests=64),
            policies=grid.policies,
            arrival_rates=grid.arrival_rates,
            seeds=grid.seeds,
        )
        chunked_run = ParallelSweepRunner(
            chunked_grid, workers=workers, backend=backend
        ).run()
        for point, chunked_point in zip(
            grid.points(), chunked_grid.points()
        ):
            chunked_metrics = chunked_run.results[chunked_point].metrics_dict()
            # The RED points engage the monolithic fallback and say so;
            # everything measured stays byte-identical either way.
            if chunked_metrics.pop("chunk_fallback", False):
                assert point.policy.name.startswith("RED")
            assert (
                chunked_metrics == serial.results[point].metrics_dict()
            ), point.describe()

    def test_parallel_cache_load_identical(self, grid, serial, tmp_path):
        from repro.sim.backends import ThreadBackend

        ParallelSweepRunner(grid, workers=1, cache=tmp_path).run()
        assert (
            SweepSummary.from_cache(
                SweepCache(tmp_path), backend=ThreadBackend(4)
            ).to_dict()
            == serial.summary().to_dict()
        )

    def test_distributed_bit_identical(self, grid, serial, tmp_path):
        # The spool axis: a coordinator plus two out-of-process
        # ``python -m repro.worker`` processes must reproduce the serial
        # grid byte for byte, and the aggregate over the
        # coordinator-side cache agrees too.
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.sim.distributed import request_stop

        spool = tmp_path / "spool"
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (
                str(Path(repro.__file__).resolve().parents[1]),
                env.get("PYTHONPATH", ""),
            )
            if p
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.worker", str(spool)],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                env=env,
            )
            for _ in range(2)
        ]
        try:
            distributed = ParallelSweepRunner(
                grid,
                cache=cache_dir,
                backend="distributed",
                spool=spool,
                wait_workers=2,
                chunk_size=1,
            ).run()
        finally:
            request_stop(spool)
            for proc in procs:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
        for point in grid.points():
            assert (
                distributed.results[point].metrics_dict()
                == serial.results[point].metrics_dict()
            ), point.describe()
        assert distributed.summary().to_dict() == serial.summary().to_dict()
        assert (
            SweepSummary.from_cache(SweepCache(cache_dir)).to_dict()
            == serial.summary().to_dict()
        )
