"""Tests for the parallel sweep-execution subsystem."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.baselines.policies import (
    BasicPolicy,
    HedgedPolicy,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
)
from repro.errors import (
    CacheCorruptionError,
    ConfigurationError,
    ExperimentError,
    SweepExecutionError,
    SweepLookupError,
)
from repro.service.nutch import NutchConfig
from repro.sim.backends import SerialBackend, ThreadBackend
from repro.sim.runner import ExperimentRunner, PolicyResult, RunnerConfig
from repro.sim.sweep import (
    ParallelSweepRunner,
    SweepCache,
    SweepSpec,
    parallel_map,
    point_cache_key,
    policy_from_name,
)
from repro.workloads.generator import GeneratorConfig


@dataclass(frozen=True)
class ExplodingPolicy(Policy):
    """A deliberately failing policy: its worker raises during setup.

    Module-level (and a plain frozen dataclass) so it pickles to spawn
    workers like any real policy descriptor.
    """

    name: str = "Exploding"

    def induced_load(self):
        raise RuntimeError("deliberate sweep-point failure")


def _tiny_base(**overrides) -> RunnerConfig:
    kwargs = dict(
        n_nodes=6,
        arrival_rate=40.0,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=0,
        nutch=NutchConfig(
            n_search_groups=3, replicas_per_group=2,
            n_segmenters=1, n_aggregators=1,
        ),
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.02, max_batch_jobs_per_node=3
        ),
        n_profiling_conditions=8,
    )
    kwargs.update(overrides)
    return RunnerConfig(**kwargs)


def _tiny_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        base=_tiny_base(),
        policies=(BasicPolicy(), REDPolicy(replicas=2)),
        arrival_rates=(30.0, 70.0),
        seeds=(0, 1),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSweepSpec:
    def test_grid_size_and_order(self):
        spec = _tiny_spec()
        points = spec.points()
        assert len(points) == spec.n_points == 2 * 2 * 2
        # Rate-major order, then policy, then seed.
        assert [p.arrival_rate for p in points[:4]] == [30.0] * 4
        assert points[0].policy.name == "Basic" and points[0].seed == 0
        assert points[1].seed == 1
        assert points[2].policy.name == "RED-2"

    def test_runner_config_overrides_rate_and_seed(self):
        spec = _tiny_spec()
        point = spec.points()[-1]
        cfg = spec.runner_config(point)
        assert cfg.arrival_rate == point.arrival_rate == 70.0
        assert cfg.seed == point.seed == 1
        assert cfg.n_nodes == spec.base.n_nodes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policies": ()},
            {"arrival_rates": ()},
            {"seeds": ()},
            {"arrival_rates": (0.0,)},
            {"arrival_rates": (50.0, 50.0)},
            {"seeds": (3, 3)},
            {"policies": (BasicPolicy(), BasicPolicy())},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            _tiny_spec(**kwargs)


class TestCacheKey:
    def test_identity_is_config_policy_rate_seed(self):
        spec = _tiny_spec()
        a, b = spec.points()[0], spec.points()[1]
        key_a = point_cache_key(spec.runner_config(a), a.policy)
        key_a2 = point_cache_key(spec.runner_config(a), a.policy)
        key_b = point_cache_key(spec.runner_config(b), b.policy)
        assert key_a == key_a2
        assert key_a != key_b  # differs by seed only

    def test_policy_parameters_change_key(self):
        cfg = _tiny_base()
        assert point_cache_key(cfg, REDPolicy(replicas=3)) != point_cache_key(
            cfg, REDPolicy(replicas=5)
        )
        assert point_cache_key(cfg, BasicPolicy()) != point_cache_key(
            cfg, PCSPolicy()
        )

    def test_config_knobs_change_key(self):
        key1 = point_cache_key(_tiny_base(), BasicPolicy())
        key2 = point_cache_key(_tiny_base(n_intervals=4), BasicPolicy())
        assert key1 != key2


class TestSerialSweep:
    @pytest.fixture(scope="class")
    def outcome(self):
        spec = _tiny_spec()
        ticks = []
        result = ParallelSweepRunner(spec, workers=1, progress=ticks.append).run()
        return spec, result, ticks

    def test_all_points_present_in_grid_order(self, outcome):
        spec, result, _ = outcome
        assert list(result.results) == spec.points()

    def test_matches_direct_runner(self, outcome):
        spec, result, _ = outcome
        point = spec.points()[0]
        direct = ExperimentRunner(spec.runner_config(point)).run(point.policy)
        assert result.results[point].metrics_dict() == direct.metrics_dict()

    def test_progress_ticks_every_point(self, outcome):
        spec, _, ticks = outcome
        assert len(ticks) == spec.n_points
        assert [t.done for t in ticks] == list(range(1, spec.n_points + 1))
        assert all(t.total == spec.n_points for t in ticks)
        assert not any(t.from_cache for t in ticks)
        assert "req/s" in ticks[0].render()

    def test_by_rate_slices_one_seed(self, outcome):
        spec, result, _ = outcome
        per_rate = result.by_rate(seed=1)
        assert set(per_rate) == {30.0, 70.0}
        assert list(per_rate[30.0]) == ["Basic", "RED-2"]
        # Multi-seed grid: seed selection is mandatory.
        with pytest.raises(ExperimentError):
            result.by_rate()
        with pytest.raises(ExperimentError):
            result.by_rate(seed=99)

    def test_get_by_coordinates(self, outcome):
        spec, result, _ = outcome
        r = result.get("RED-2", 70.0, seed=0)
        assert r.policy_name == "RED-2" and r.arrival_rate == 70.0
        with pytest.raises(ExperimentError):
            result.get("PCS", 70.0, seed=0)

    def test_get_defaults_to_first_grid_seed(self, outcome):
        spec, result, _ = outcome
        assert result.get("Basic", 30.0) is result.get(
            "Basic", 30.0, seed=spec.seeds[0]
        )

    def test_get_miss_names_available_coordinates(self, outcome):
        spec, result, _ = outcome
        with pytest.raises(SweepLookupError) as err:
            result.get("PCS", 30.0, seed=0)
        message = str(err.value)
        # The error teaches the caller what the grid actually holds.
        assert "'Basic'" in message and "'RED-2'" in message
        assert "30" in message and "70" in message
        assert "[0, 1]" in message
        with pytest.raises(SweepLookupError):
            result.get("Basic", 31.0)
        with pytest.raises(SweepLookupError):
            result.get("Basic", 30.0, seed=5)

    def test_render_summarises(self, outcome):
        spec, result, _ = outcome
        out = result.render()
        assert f"{spec.n_points} points" in out
        assert "0 from cache" in out

    def test_seeds_differentiate_results(self, outcome):
        spec, result, _ = outcome
        a = result.get("Basic", 30.0, seed=0)
        b = result.get("Basic", 30.0, seed=1)
        assert a.component_p99_s != b.component_p99_s


class TestPolicyResultRoundtrip:
    def test_json_roundtrip_is_exact(self):
        spec = _tiny_spec()
        point = spec.points()[0]
        result = ExperimentRunner(spec.runner_config(point)).run(point.policy)
        blob = json.dumps(result.to_dict())
        back = PolicyResult.from_dict(json.loads(blob))
        assert back == result  # includes the timing fields

    def test_metrics_dict_drops_timings(self):
        spec = _tiny_spec()
        point = spec.points()[0]
        result = ExperimentRunner(spec.runner_config(point)).run(point.policy)
        d = result.metrics_dict()
        assert "wall_time_s" not in d and "scheduling_time_s" not in d
        assert d["n_requests"] == result.n_requests


class TestSweepCache:
    def test_full_rerun_hits_every_point(self, tmp_path):
        spec = _tiny_spec(seeds=(0,))
        first = ParallelSweepRunner(spec, workers=1, cache=tmp_path).run()
        assert first.cache_hits == 0
        again = ParallelSweepRunner(spec, workers=1, cache=tmp_path).run()
        assert again.cache_hits == spec.n_points
        for point in spec.points():
            assert (
                again.results[point].metrics_dict()
                == first.results[point].metrics_dict()
            )

    def test_interrupted_sweep_resumes(self, tmp_path):
        spec = _tiny_spec(seeds=(0,))
        cache = SweepCache(tmp_path)
        full = ParallelSweepRunner(spec, workers=1, cache=cache).run()
        # Simulate an interruption that lost one point.
        victim = spec.points()[-1]
        cache.path_for(
            point_cache_key(spec.runner_config(victim), victim.policy)
        ).unlink()
        assert len(cache) == spec.n_points - 1
        resumed = ParallelSweepRunner(spec, workers=1, cache=cache).run()
        assert resumed.cache_hits == spec.n_points - 1
        assert (
            resumed.results[victim].metrics_dict()
            == full.results[victim].metrics_dict()
        )

    def test_corrupt_entry_raises_named_error(self, tmp_path):
        # Atomic writes mean a half-written point can never be
        # self-inflicted, so corruption is real damage: it must raise a
        # named error identifying the file, not read as a silent miss.
        spec = _tiny_spec(seeds=(0,), arrival_rates=(30.0,))
        cache = SweepCache(tmp_path)
        ParallelSweepRunner(spec, workers=1, cache=cache).run()
        point = spec.points()[0]
        key = point_cache_key(spec.runner_config(point), point.policy)
        cache.path_for(key).write_text("{not json")
        with pytest.raises(CacheCorruptionError) as err:
            cache.load(key)
        assert str(cache.path_for(key)) in str(err.value)
        assert err.value.path == cache.path_for(key)
        # Deleting the damaged entry recovers: the point is recomputed.
        cache.path_for(key).unlink()
        rerun = ParallelSweepRunner(spec, workers=1, cache=cache).run()
        assert rerun.cache_hits == spec.n_points - 1

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        spec = _tiny_spec(seeds=(0,), arrival_rates=(30.0,))
        cache = SweepCache(tmp_path)
        ParallelSweepRunner(spec, workers=1, cache=cache).run()
        point = spec.points()[0]
        key = point_cache_key(spec.runner_config(point), point.policy)
        payload = json.loads(cache.path_for(key).read_text())
        payload["version"] = -1
        cache.path_for(key).write_text(json.dumps(payload))
        assert cache.load(key) is None

    def test_progress_reports_cache_hits(self, tmp_path):
        spec = _tiny_spec(seeds=(0,), arrival_rates=(30.0,))
        ParallelSweepRunner(spec, workers=1, cache=tmp_path).run()
        ticks = []
        ParallelSweepRunner(
            spec, workers=1, cache=tmp_path, progress=ticks.append
        ).run()
        assert all(t.from_cache for t in ticks)
        assert "cache" in ticks[0].render()

    def test_clear(self, tmp_path):
        spec = _tiny_spec(seeds=(0,), arrival_rates=(30.0,))
        cache = SweepCache(tmp_path)
        ParallelSweepRunner(spec, workers=1, cache=cache).run()
        assert len(cache) == spec.n_points
        assert cache.clear() == spec.n_points
        assert len(cache) == 0


class TestParallelExecution:
    """Parallel fan-out must be metric-identical to the serial path.

    Kept small: the spawn start method pays an interpreter+numpy import
    per worker, so this is the slowest test in the module.
    """

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        spec = _tiny_spec(arrival_rates=(40.0,), seeds=(0, 1))
        serial = ParallelSweepRunner(spec, workers=1).run()
        parallel = ParallelSweepRunner(spec, workers=2, cache=tmp_path).run()
        for point in spec.points():
            assert (
                parallel.results[point].metrics_dict()
                == serial.results[point].metrics_dict()
            ), point.describe()
        # And the parallel run populated the resume cache.
        assert len(SweepCache(tmp_path)) == spec.n_points

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelSweepRunner(_tiny_spec(), workers=0)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelSweepRunner(_tiny_spec(), workers=2, chunk_size=0)

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="ssh"):
            ParallelSweepRunner(_tiny_spec(), workers=2, backend="ssh")

    def test_thread_backend_matches_serial_bit_for_bit(self):
        spec = _tiny_spec(arrival_rates=(40.0,), seeds=(0,))
        serial = ParallelSweepRunner(spec, workers=1).run()
        threaded = ParallelSweepRunner(
            spec, workers=2, backend="thread"
        ).run()
        for point in spec.points():
            assert (
                threaded.results[point].metrics_dict()
                == serial.results[point].metrics_dict()
            ), point.describe()

    def test_backend_instance_accepted(self):
        spec = _tiny_spec(
            policies=(BasicPolicy(),), arrival_rates=(40.0,), seeds=(0,)
        )
        direct = ParallelSweepRunner(spec, backend=SerialBackend()).run()
        threaded = ParallelSweepRunner(spec, backend=ThreadBackend(2)).run()
        point = spec.points()[0]
        assert (
            direct.results[point].metrics_dict()
            == threaded.results[point].metrics_dict()
        )


class TestWorkerValidationCLI:
    """CLI arg-parser side of the workers/chunk-size validation."""

    @pytest.mark.parametrize("command", ["sweep", "fig5", "fig6", "fig7"])
    def test_workers_zero_is_a_usage_error(self, command, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args([command, "--workers", "0"])
        assert exit_info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_chunk_size_zero_is_a_usage_error(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--chunk-size", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_valid_backend_args_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--workers", "3", "--backend", "thread",
             "--chunk-size", "2"]
        )
        assert (args.workers, args.backend, args.chunk_size) == (3, "thread", 2)

    def test_fig5_fig7_default_backend_is_driver_resolved(self):
        # fig5/fig7 points are expensive or timing-sensitive: their
        # drivers resolve the default to process workers instead of the
        # small-batch thread auto-rule, so the parser must hand them
        # None (sweep/fig6 keep the literal "auto").
        from repro.cli import build_parser

        assert build_parser().parse_args(["fig5"]).backend is None
        assert build_parser().parse_args(["fig7"]).backend is None
        assert build_parser().parse_args(["sweep"]).backend == "auto"
        assert build_parser().parse_args(["fig6"]).backend == "auto"


class TestFailureHardening:
    """A failing point must not poison the sweep (named error, cached
    peers, resumable rerun) — regression for the raw-propagation bug."""

    def _spec_with_exploding_policy(self, **overrides):
        return _tiny_spec(
            policies=(BasicPolicy(), ExplodingPolicy()),
            arrival_rates=(30.0,),
            seeds=(0, 1),
            **overrides,
        )

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_failure_raises_named_error_with_coordinates(
        self, backend, tmp_path
    ):
        spec = self._spec_with_exploding_policy()
        runner = ParallelSweepRunner(
            spec, workers=2, cache=tmp_path, backend=backend
        )
        with pytest.raises(SweepExecutionError) as err:
            runner.run()
        assert err.value.policy == "Exploding"
        assert err.value.arrival_rate == 30.0
        assert err.value.seed in (0, 1)
        message = str(err.value)
        assert "Exploding" in message and "deliberate" in message
        assert "resumes" in message

    def test_finished_peers_stay_cached_and_rerun_resumes(self, tmp_path):
        spec = self._spec_with_exploding_policy()
        cache = SweepCache(tmp_path)
        with pytest.raises(SweepExecutionError):
            # Serial backend: both Basic points run (grid order puts
            # Basic before Exploding) and land in the cache first.
            ParallelSweepRunner(spec, cache=cache, backend="serial").run()
        assert len(cache) == 2  # the two Basic points
        # The sweep did not complete: no completion stamp on the manifest.
        assert cache.manifest()["completed"] is None
        # Dropping the broken policy resumes from the cached peers.
        fixed = SweepSpec(
            base=spec.base,
            policies=(BasicPolicy(),),
            arrival_rates=spec.arrival_rates,
            seeds=spec.seeds,
        )
        resumed = ParallelSweepRunner(fixed, cache=cache).run()
        assert resumed.cache_hits == 2
        assert cache.manifest()["completed"] is not None

    def test_bad_worker_index_still_named(self):
        # Defensive path: an index the runner cannot map back still
        # raises the named error (with unknown coordinates).
        from repro.errors import WorkerTaskError

        class _BrokenIndexBackend(SerialBackend):
            def imap_unordered(self, fn, items):
                raise WorkerTaskError("task -1 raised: ?", index=None)
                yield  # pragma: no cover

        spec = self._spec_with_exploding_policy()
        with pytest.raises(SweepExecutionError) as err:
            ParallelSweepRunner(spec, backend=_BrokenIndexBackend()).run()
        assert err.value.policy is None
        assert "unknown point" in str(err.value)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_inline_path_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [5], workers=4) == [25]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1], workers=0)

    def test_multi_worker_path_preserves_order(self):
        # Three items auto-route to the thread backend (small batch).
        assert parallel_map(_square, [3, 1, 2], workers=2) == [9, 1, 4]

    def test_explicit_process_backend_preserves_order(self):
        assert parallel_map(
            _square, [3, 1, 2], workers=2, backend="process", chunk_size=2
        ) == [9, 1, 4]

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1, 2], workers=2, chunk_size=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel_map(_square, [1, 2], workers=2, backend="ssh")


class TestPolicyFromName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("Basic", BasicPolicy()),
            ("basic", BasicPolicy()),
            ("RED-3", REDPolicy(replicas=3)),
            ("red-5", REDPolicy(replicas=5)),
            ("RI-90", ReissuePolicy(quantile=0.90)),
            ("RI-99", ReissuePolicy(quantile=0.99)),
            ("Hedge", HedgedPolicy()),
            ("hedge-5", HedgedPolicy(hedge_delay_s=0.005)),
            ("Hedge-7.5ms", HedgedPolicy(hedge_delay_s=0.0075)),
        ],
    )
    def test_legend_names(self, name, expected):
        assert policy_from_name(name) == expected

    def test_pcs_uses_fig6_configuration(self):
        from repro.experiments.fig6 import paper_pcs_policy

        assert policy_from_name("PCS") == paper_pcs_policy()

    @pytest.mark.parametrize("name", ["FANCY", "RED-x", "RI-", "RED"])
    def test_unknown_rejected(self, name):
        with pytest.raises(ConfigurationError):
            policy_from_name(name)


class TestCostAwareBackendSelection:
    """Regression for the ROADMAP-documented auto_backend bug: a small
    grid of expensive points with --workers N must route to process
    workers without the user having to pass --backend process."""

    def _expensive_spec(self) -> SweepSpec:
        # 10 intervals x 120 s x 60 nodes: well past the spawn-tax
        # cutoff under the spec-based cost estimate.
        base = _tiny_base(
            n_nodes=60, interval_s=120.0, n_intervals=10, warmup_intervals=1
        )
        return SweepSpec(
            base=base,
            policies=(BasicPolicy(), REDPolicy(replicas=2)),
            arrival_rates=(30.0, 70.0),
            seeds=(0,),
        )

    def test_small_expensive_grid_auto_selects_process(self):
        from repro.sim.backends import ProcessBackend
        from repro.sim.sweep import estimated_point_cost_s

        spec = self._expensive_spec()
        assert spec.n_points == 4  # the ISSUE's regression shape
        runner = ParallelSweepRunner(spec, workers=4)
        backend = runner._resolve_backend(spec.n_points, [])
        assert isinstance(backend, ProcessBackend)
        assert estimated_point_cost_s(spec.base) >= 2.0

    def test_small_cheap_grid_still_auto_selects_threads(self):
        spec = _tiny_spec(seeds=(0,))  # 4 cheap points
        runner = ParallelSweepRunner(spec, workers=4)
        assert runner._resolve_backend(spec.n_points, []).name == "thread"

    def test_explicit_backend_still_wins(self):
        runner = ParallelSweepRunner(
            self._expensive_spec(), workers=4, backend="thread"
        )
        assert runner._resolve_backend(4, []).name == "thread"

    def test_measured_cache_timings_override_spec_estimate(self):
        """On a resumed sweep the cache hits carry measured wall-clock;
        the estimate must use them over the spec model."""
        @dataclass
        class _Timed:
            wall_time_s: float

        spec = _tiny_spec(seeds=(0,))  # cheap by the spec estimate
        runner = ParallelSweepRunner(spec, workers=4)
        cheap = runner._estimate_point_cost([])
        assert cheap < 2.0
        measured = runner._estimate_point_cost([_Timed(9.0), _Timed(11.0)])
        assert measured == pytest.approx(10.0)
        assert runner._resolve_backend(4, [_Timed(9.0), _Timed(11.0)]).name == (
            "process"
        )

    def test_estimate_scales_with_spec_knobs(self):
        from repro.sim.sweep import estimated_point_cost_s

        small = estimated_point_cost_s(_tiny_base())
        big = estimated_point_cost_s(_tiny_base(n_nodes=60, interval_s=120.0))
        assert big > small > 0


def _record(node_seconds, serial_s_per_point, schema_version=1):
    """A minimal BENCH record payload as `load_benchmark_records` yields."""
    return {
        "schema_version": schema_version,
        "name": "sweep_parallel_speedup",
        "config": {"node_seconds_per_point": node_seconds},
        "timings_s": {"serial_s_per_point": serial_s_per_point},
    }


class TestCostCalibration:
    """`SIM_WALL_S_PER_NODE_SECOND` is recalibrated from recorded
    BENCH_* artifacts instead of hand-tuned."""

    def test_median_ratio_of_usable_records(self):
        from repro.sim.sweep import calibrate_wall_s_per_node_second

        records = [
            _record(1000.0, 0.03),   # 3e-5
            _record(2000.0, 0.10),   # 5e-5
            _record(500.0, 0.045),   # 9e-5
        ]
        assert calibrate_wall_s_per_node_second(records) == pytest.approx(5e-5)

    def test_even_count_takes_midpoint(self):
        from repro.sim.sweep import calibrate_wall_s_per_node_second

        records = [_record(1000.0, 0.02), _record(1000.0, 0.04)]
        assert calibrate_wall_s_per_node_second(records) == pytest.approx(3e-5)

    def test_unusable_records_skipped(self):
        from repro.sim.sweep import calibrate_wall_s_per_node_second

        records = [
            {"config": {}, "timings_s": {}},                    # no fields
            _record(0.0, 0.02),                                 # zero node-s
            _record(1000.0, -1.0),                              # negative
            {"config": {"node_seconds_per_point": "x"},
             "timings_s": {"serial_s_per_point": 0.5}},         # non-numeric
            _record(1000.0, 0.04),                              # usable
        ]
        assert calibrate_wall_s_per_node_second(records) == pytest.approx(4e-5)

    def test_no_usable_records_falls_back_or_raises(self):
        from repro.sim.sweep import calibrate_wall_s_per_node_second

        assert calibrate_wall_s_per_node_second([], default=5e-4) == 5e-4
        with pytest.raises(ConfigurationError, match="no benchmark record"):
            calibrate_wall_s_per_node_second([])

    def test_pinned_constant_within_measured_band(self):
        """The shipped constant must stay the order of magnitude the
        recorded benchmarks measure (recalibrate it when hosts drift)."""
        from repro.sim.sweep import SIM_WALL_S_PER_NODE_SECOND

        assert 1e-6 < SIM_WALL_S_PER_NODE_SECOND < 1e-3


class TestBenchmarkRecordLoader:
    """`benchmarks/recording.load_benchmark_records` — the calibration
    helper's data source (loaded by file path: benchmarks/ is not a
    package on the test path)."""

    @staticmethod
    def _recording_module():
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks" / "recording.py"
        )
        spec = importlib.util.spec_from_file_location("_recording", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_roundtrip_and_filtering(self, tmp_path):
        rec = self._recording_module()
        rec.record_benchmark(
            "alpha", {"serial_s_per_point": 0.5},
            config={"node_seconds_per_point": 100.0}, out_dir=tmp_path,
        )
        rec.record_benchmark("beta", {"x": 1.0}, out_dir=tmp_path)
        # Corrupt and foreign-schema files must be skipped, not fatal.
        (tmp_path / "BENCH_corrupt.json").write_text("{not json")
        (tmp_path / "BENCH_foreign.json").write_text(
            json.dumps({"schema_version": 99, "timings_s": {}})
        )
        (tmp_path / "unrelated.txt").write_text("ignored")
        records = rec.load_benchmark_records(tmp_path)
        assert [r["name"] for r in records] == ["alpha", "beta"]
        assert records[0]["timings_s"]["serial_s_per_point"] == 0.5

    def test_absent_directory_yields_empty(self, tmp_path):
        rec = self._recording_module()
        assert rec.load_benchmark_records(tmp_path / "missing") == []

    def test_records_feed_calibration(self, tmp_path):
        from repro.sim.sweep import calibrate_wall_s_per_node_second

        rec = self._recording_module()
        rec.record_benchmark(
            "sweep_parallel_speedup",
            {"serial_s_per_point": 0.04},
            config={"node_seconds_per_point": 1000.0},
            out_dir=tmp_path,
        )
        calibrated = calibrate_wall_s_per_node_second(
            rec.load_benchmark_records(tmp_path)
        )
        assert calibrated == pytest.approx(4e-5)
