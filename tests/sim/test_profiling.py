"""Tests for the profiling pipeline that trains the predictor."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.interference.ground_truth import default_interference_model
from repro.model.training import mean_absolute_percentage_error
from repro.service.component import Component, ComponentClass
from repro.service.nutch import NutchConfig, build_nutch_service
from repro.sim.profiling import (
    ProfilingConfig,
    mixed_conditions,
    paper_fig5_conditions,
    profile_component,
    train_predictor_for_service,
)
from repro.simcore.distributions import LogNormal
from repro.units import gb, mb, ms


@pytest.fixture
def rng():
    return np.random.default_rng(17)


def _rep():
    return Component(
        name="searching-rep",
        cls=ComponentClass.SEARCHING,
        base_service=LogNormal(ms(6), 0.8),
    )


class TestConditions:
    def test_paper_grid_shape(self):
        conds = paper_fig5_conditions()
        # 3 Hadoop workloads x 20 sizes + 3 Spark x 10 sizes.
        assert len(conds) == 3 * 20 + 3 * 10
        assert all(len(c) == 1 for c in conds)

    def test_paper_size_ranges(self):
        conds = paper_fig5_conditions()
        hadoop = [c[0] for c in conds if c[0].profile.name.startswith("hadoop")]
        spark = [c[0] for c in conds if c[0].profile.name.startswith("spark")]
        assert min(j.input_mb for j in hadoop) == pytest.approx(mb(50))
        assert max(j.input_mb for j in hadoop) == pytest.approx(gb(4))
        assert min(j.input_mb for j in spark) == pytest.approx(mb(200))
        assert max(j.input_mb for j in spark) == pytest.approx(gb(7))

    def test_mixed_conditions_counts(self, rng):
        conds = mixed_conditions(30, rng, max_jobs=3)
        assert len(conds) == 30
        assert all(0 <= len(c) <= 3 for c in conds)
        assert any(len(c) == 0 for c in conds)  # idle-node condition

    def test_invalid_counts_rejected(self, rng):
        with pytest.raises(ExperimentError):
            paper_fig5_conditions(n_hadoop_sizes=0)
        with pytest.raises(ExperimentError):
            mixed_conditions(0, rng)


class TestProfileComponent:
    def test_produces_training_pairs(self, rng):
        conds = mixed_conditions(10, rng)
        cfg = ProfilingConfig(window_s=30.0, repetitions=2)
        result = profile_component(
            _rep(), conds, default_interference_model(0.02), cfg, rng
        )
        assert len(result.training) == 10 * 2
        assert result.conditions_observed == 10
        assert result.scv_estimate == pytest.approx(0.8, rel=0.3)

    def test_per_type_training_matches_paper_accuracy(self, rng):
        """Fig. 5's setting: one co-runner type per campaign ("in each
        test, we trained the regression models") — Eq. 1 then predicts
        held-out sizes with a few percent error."""
        from repro.model.training import train_combined_model

        conds = [
            c
            for c in paper_fig5_conditions()
            if c[0].profile.name == "hadoop.wordcount"
        ]
        cfg = ProfilingConfig(window_s=60.0, repetitions=3)
        interference = default_interference_model(0.02)
        result = profile_component(_rep(), conds, interference, cfg, rng)
        train, test = result.training.split(0.7, rng)
        model, _ = train_combined_model(train)
        pred = model.predict(test.contention)
        mape = mean_absolute_percentage_error(pred, test.service_times)
        assert mape < 5.0

    def test_mixed_training_data_learnable(self, rng):
        """Pooled multi-job training (what the online scheduler uses) is
        coarser than Fig. 5's per-type campaigns — Eq. 1 averages four
        single-resource views, so job-type diversity adds spread — but
        must stay accurate enough to rank placements."""
        from repro.model.training import train_combined_model

        conds = mixed_conditions(40, rng)
        cfg = ProfilingConfig(window_s=60.0, repetitions=2)
        interference = default_interference_model(0.02)
        result = profile_component(_rep(), conds, interference, cfg, rng)
        train, test = result.training.split(0.75, rng)
        model, _ = train_combined_model(train)
        pred = model.predict(test.contention)
        mape = mean_absolute_percentage_error(pred, test.service_times)
        assert mape < 18.0

    def test_empty_conditions_rejected(self, rng):
        with pytest.raises(ExperimentError):
            profile_component(
                _rep(), [], default_interference_model(), ProfilingConfig(), rng
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ExperimentError):
            ProfilingConfig(window_s=0.0)
        with pytest.raises(ExperimentError):
            ProfilingConfig(repetitions=0)


class TestTrainPredictorForService:
    def test_one_model_per_class(self, rng):
        service = build_nutch_service(
            NutchConfig(n_search_groups=2, replicas_per_group=2)
        )
        predictor = train_predictor_for_service(
            service,
            default_interference_model(0.02),
            rng,
            config=ProfilingConfig(window_s=30.0, repetitions=1),
            n_mixed_conditions=15,
        )
        for cls in service.classes():
            u = np.array([[0.3, 10.0, 60.0, 20.0]])
            mean = predictor.predict_mean_service(cls, u)[0]
            assert mean > 0
            assert predictor.scv(cls) > 0

    def test_predictions_track_ground_truth_on_manifold(self, rng):
        """Probes drawn from realistic co-location mixes (the contention
        manifold the scheduler actually visits) must track ground truth
        well enough to rank placements."""
        service = build_nutch_service(
            NutchConfig(n_search_groups=2, replicas_per_group=2)
        )
        interference = default_interference_model(0.02)
        predictor = train_predictor_for_service(
            service,
            interference,
            rng,
            config=ProfilingConfig(window_s=60.0, repetitions=2),
            n_mixed_conditions=60,
        )
        rep = service.representative(ComponentClass.SEARCHING)
        probe_rng = np.random.default_rng(5)
        from repro.cluster.resources import ResourceVector

        truths, preds = [], []
        for condition in mixed_conditions(30, probe_rng):
            u = ResourceVector.sum(spec.demand for spec in condition)
            truths.append(interference.mean_service_time(rep, u))
            preds.append(
                predictor.predict_mean_service(rep.cls, u.as_array()[None, :])[0]
            )
        truths, preds = np.array(truths), np.array(preds)
        assert np.mean(np.abs(preds - truths) / truths) * 100 < 15.0
        # Ranking quality: predicted ordering correlates strongly.
        assert np.corrcoef(truths, preds)[0, 1] > 0.9
