"""Integration tests for the full experiment runner (small scale)."""

import numpy as np
import pytest

from repro.baselines.policies import BasicPolicy, PCSPolicy, REDPolicy
from repro.errors import ExperimentError
from repro.experiments.fig6 import paper_pcs_policy
from repro.service.nutch import NutchConfig
from repro.sim.runner import ExperimentRunner, RunnerConfig
from repro.workloads.generator import GeneratorConfig


def _small_config(arrival_rate=80.0, seed=5, **overrides):
    kwargs = dict(
        n_nodes=10,
        arrival_rate=arrival_rate,
        interval_s=20.0,
        n_intervals=5,
        warmup_intervals=1,
        seed=seed,
        nutch=NutchConfig(
            n_search_groups=6, replicas_per_group=3,
            n_segmenters=2, n_aggregators=2,
        ),
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.02, max_batch_jobs_per_node=3
        ),
        n_profiling_conditions=25,
    )
    kwargs.update(overrides)
    return RunnerConfig(**kwargs)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(_small_config())


@pytest.fixture(scope="module")
def basic_result(runner):
    return runner.run(BasicPolicy())


@pytest.fixture(scope="module")
def pcs_result(runner):
    return runner.run(paper_pcs_policy())


class TestBasicRun:
    def test_metrics_populated(self, basic_result):
        r = basic_result
        assert r.n_requests > 0
        assert r.component_p99_s > 0
        assert r.overall_mean_s > 0
        assert r.component_latency.p99 >= r.component_latency.p50
        assert len(r.per_interval_overall_mean) == 4  # 5 intervals - 1 warmup

    def test_basic_never_migrates(self, basic_result):
        assert basic_result.n_migrations == 0
        assert basic_result.scheduling_time_s == 0.0

    def test_overall_exceeds_component_latency(self, basic_result):
        # Overall = sum over 3 stages of group maxima.
        assert basic_result.overall_mean_s > basic_result.component_latency.mean

    def test_deterministic_given_seed(self):
        a = ExperimentRunner(_small_config(seed=42)).run(BasicPolicy())
        b = ExperimentRunner(_small_config(seed=42)).run(BasicPolicy())
        assert a.component_p99_s == b.component_p99_s
        assert a.overall_mean_s == b.overall_mean_s

    def test_seeds_change_outcome(self):
        a = ExperimentRunner(_small_config(seed=42)).run(BasicPolicy())
        b = ExperimentRunner(_small_config(seed=43)).run(BasicPolicy())
        assert a.component_p99_s != b.component_p99_s

    def test_render_mentions_policy(self, basic_result):
        assert "Basic" in basic_result.render()


class TestPCSRun:
    def test_pcs_migrates_and_improves(self, basic_result, pcs_result):
        assert pcs_result.n_migrations > 0
        assert pcs_result.overall_mean_s < basic_result.overall_mean_s
        assert pcs_result.component_p99_s < basic_result.component_p99_s

    def test_scheduling_time_recorded(self, pcs_result):
        assert pcs_result.scheduling_time_s > 0

    def test_oracle_at_least_as_good_as_trained(self, runner, basic_result):
        oracle = runner.run(
            PCSPolicy(
                scheduler_config=paper_pcs_policy().scheduler_config,
                use_oracle=True,
            )
        )
        assert oracle.overall_mean_s < basic_result.overall_mean_s

    def test_predictor_trained_once_and_cached(self, runner):
        p1 = runner.trained_predictor()
        p2 = runner.trained_predictor()
        assert p1 is p2


class TestLoadFeedback:
    def test_red_load_raises_interference(self):
        """RED-5's executed copies must consume more resources than
        Basic's — visible as higher latency at moderate load."""
        runner = ExperimentRunner(_small_config(arrival_rate=120.0))
        basic = runner.run(BasicPolicy())
        red5 = runner.run(REDPolicy(replicas=5))
        assert red5.overall_mean_s > basic.overall_mean_s


class TestPerIntervalP99Convention:
    """Regression: per-interval p99 must use the shared nearest-rank
    kernel, not numpy's default linear interpolation (which reports a
    never-observed latency and disagrees with the pooled summaries)."""

    #: Ten latencies for which the two conventions visibly disagree:
    #: linear p99 = 9.91, nearest-rank ("higher") p99 = 10.0.
    LATENCIES = np.arange(1.0, 11.0)

    def test_per_interval_p99_is_nearest_rank(self, monkeypatch):
        from repro.sim import runner as runner_mod
        from repro.sim.metrics import percentile
        from repro.sim.queue_sim import IntervalOutcome

        lat = self.LATENCIES
        assert float(np.percentile(lat, 99)) != percentile(lat, 99)

        def crafted_interval(
            topology, policy, rate, duration_s, dists, rng, classes=None
        ):
            return IntervalOutcome(
                request_latencies=lat.copy(),
                component_sojourns={"comp": lat.copy()},
                component_service_samples={"comp": lat.copy()},
                duration_s=duration_s,
                arrival_rate=rate,
            )

        monkeypatch.setattr(
            runner_mod, "simulate_service_interval", crafted_interval
        )
        cfg = _small_config(n_intervals=2, warmup_intervals=1)
        result = ExperimentRunner(cfg).run(BasicPolicy())
        assert result.per_interval_component_p99 == [percentile(lat, 99)]
        assert result.per_interval_component_p99 == [10.0]
        # The per-interval series and the pooled summary now agree on
        # the convention (here one measured interval == the pool).
        assert result.per_interval_component_p99[0] == result.component_p99_s


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_nodes": 0},
            {"arrival_rate": 0.0},
            {"warmup_intervals": 9, "n_intervals": 5},
            {"interference_noise": -0.1},
            {"churn_prewarm_s": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            _small_config(**kwargs)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"interval_s": 0.0}, "interval_s"),
            ({"interval_s": -8.0}, "interval_s"),
            ({"interval_s": float("inf")}, "interval_s"),
            ({"n_intervals": 0, "warmup_intervals": 0}, "n_intervals"),
            ({"n_intervals": -3, "warmup_intervals": 0}, "n_intervals"),
        ],
    )
    def test_window_shape_gets_named_configuration_error(self, kwargs, match):
        """Nonpositive window shapes raise a *named* ConfigurationError
        at construction (also a ValueError) instead of surfacing as a
        deep numpy empty-array failure inside the loop."""
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match=match):
            _small_config(**kwargs)
        with pytest.raises(ValueError):
            _small_config(**kwargs)
