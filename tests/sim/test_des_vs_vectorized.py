"""Integration: the event-driven reference simulator bounds the
vectorised simulator's stage-alignment approximation."""

import numpy as np
import pytest

from repro.baselines.policies import BasicPolicy
from repro.errors import SimulationError
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.sim.des_service import DESServiceSimulator
from repro.sim.queue_sim import simulate_service_interval
from repro.simcore.distributions import Exponential, LogNormal
from repro.units import ms


def _mini_nutch(search_groups=4, replicas=2):
    def comp(name, cls, mean, scv):
        return Component(name=name, cls=cls, base_service=LogNormal(mean, scv))

    return ServiceTopology(
        [
            Stage(
                "segmenting",
                [
                    ReplicaGroup(
                        "seg",
                        [
                            comp(f"seg-{r}", ComponentClass.SEGMENTING, ms(1.2), 0.4)
                            for r in range(2)
                        ],
                    )
                ],
            ),
            Stage(
                "searching",
                [
                    ReplicaGroup(
                        f"g{g}",
                        [
                            comp(
                                f"s-{g}-{r}",
                                ComponentClass.SEARCHING,
                                ms(6),
                                0.8,
                            )
                            for r in range(replicas)
                        ],
                    )
                    for g in range(search_groups)
                ],
            ),
            Stage(
                "aggregating",
                [
                    ReplicaGroup(
                        "agg",
                        [
                            comp(f"agg-{r}", ComponentClass.AGGREGATING, ms(1.5), 0.4)
                            for r in range(2)
                        ],
                    )
                ],
            ),
        ]
    )


def _dists(topology):
    return {c.name: c.base_service for c in topology.components}


class TestDESBasics:
    def test_all_requests_complete(self):
        topo = _mini_nutch()
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(0))
        out = des.run(arrival_rate=40.0, duration_s=60.0)
        assert out.completed == out.request_latencies.size > 0
        assert out.abandoned_in_flight == 0

    def test_latencies_at_least_sum_of_stage_services(self):
        # Each request visits 3 stages; latency must exceed ~0 clearly.
        topo = _mini_nutch()
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(1))
        out = des.run(arrival_rate=10.0, duration_s=60.0)
        assert out.request_latencies.min() > ms(2)

    def test_component_sojourns_collected(self):
        topo = _mini_nutch()
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(2))
        out = des.run(arrival_rate=30.0, duration_s=30.0)
        assert out.pooled_component_latencies().size > 0

    def test_missing_dist_rejected(self):
        topo = _mini_nutch()
        dists = _dists(topo)
        dists.pop(topo.components[0].name)
        with pytest.raises(SimulationError):
            DESServiceSimulator(topo, dists, np.random.default_rng(0))

    def test_bad_run_params_rejected(self):
        topo = _mini_nutch()
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(0))
        with pytest.raises(SimulationError):
            des.run(arrival_rate=0.0, duration_s=10.0)

    def test_mm1_sanity(self):
        """Single component: DES must match the M/M/1 sojourn."""
        topo = ServiceTopology(
            [
                Stage(
                    "only",
                    [
                        ReplicaGroup(
                            "g",
                            [
                                Component(
                                    name="c",
                                    cls=ComponentClass.GENERIC,
                                    base_service=Exponential(ms(5)),
                                )
                            ],
                        )
                    ],
                )
            ]
        )
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(3))
        lam = 100.0  # rho = 0.5
        out = des.run(arrival_rate=lam, duration_s=600.0)
        expected = 1.0 / (1.0 / ms(5) - lam)
        assert out.request_latencies.mean() == pytest.approx(expected, rel=0.06)


class TestCrossValidation:
    """The headline check: vectorised and DES latency distributions
    agree within a modest tolerance at both light and moderate load."""

    @pytest.mark.parametrize("lam,rel", [(20.0, 0.08), (80.0, 0.12)])
    def test_overall_mean_agrees(self, lam, rel):
        topo = _mini_nutch()
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(10))
        out_des = des.run(arrival_rate=lam, duration_s=400.0)
        out_vec = simulate_service_interval(
            topo, BasicPolicy(), lam, 400.0, _dists(topo),
            np.random.default_rng(11),
        )
        assert out_vec.request_latencies.mean() == pytest.approx(
            out_des.request_latencies.mean(), rel=rel
        )

    def test_component_p99_agrees(self):
        topo = _mini_nutch()
        lam = 60.0
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(12))
        out_des = des.run(arrival_rate=lam, duration_s=400.0)
        out_vec = simulate_service_interval(
            topo, BasicPolicy(), lam, 400.0, _dists(topo),
            np.random.default_rng(13),
        )
        p99_des = np.percentile(out_des.pooled_component_latencies(), 99)
        p99_vec = np.percentile(out_vec.pooled_component_latencies(), 99)
        assert p99_vec == pytest.approx(p99_des, rel=0.15)

    def test_overall_p99_agrees(self):
        topo = _mini_nutch()
        lam = 40.0
        des = DESServiceSimulator(topo, _dists(topo), np.random.default_rng(14))
        out_des = des.run(arrival_rate=lam, duration_s=500.0)
        out_vec = simulate_service_interval(
            topo, BasicPolicy(), lam, 500.0, _dists(topo),
            np.random.default_rng(15),
        )
        p99_des = np.percentile(out_des.request_latencies, 99)
        p99_vec = np.percentile(out_vec.request_latencies, 99)
        assert p99_vec == pytest.approx(p99_des, rel=0.15)


class TestScenarioCrossValidation:
    """The stage-alignment approximation must stay bounded on the
    registered non-Nutch scenarios too: a five-stage sequential chain
    accumulates inter-stage jitter the most, heavy-tailed fan-out
    stresses the stage max, and the DAG scenarios exercise the
    critical-path join (parallel branches, optional groups, skip
    edges) in both simulators."""

    @pytest.mark.parametrize(
        "scenario,scale,lam,rel_mean,rel_p99",
        [
            ("pipeline-deep", 0.5, 30.0, 0.08, 0.12),
            ("fanout-feed", 0.15, 25.0, 0.12, 0.18),
            ("diamond-search", 0.5, 30.0, 0.08, 0.15),
            ("branchy-api", 1.0, 30.0, 0.08, 0.15),
            ("mixed-frontend", 0.5, 30.0, 0.08, 0.15),
        ],
    )
    def test_mean_and_component_p99_agree(
        self, scenario, scale, lam, rel_mean, rel_p99
    ):
        from repro.scenarios import get_scenario

        spec = get_scenario(scenario)
        topo = spec.build_service(spec.runner_config(scale=scale)).topology
        dists = _dists(topo)
        des = DESServiceSimulator(topo, dists, np.random.default_rng(10))
        out_des = des.run(arrival_rate=lam, duration_s=400.0)
        out_vec = simulate_service_interval(
            topo, BasicPolicy(), lam, 400.0, dists,
            np.random.default_rng(11),
        )
        assert out_vec.request_latencies.mean() == pytest.approx(
            out_des.request_latencies.mean(), rel=rel_mean
        )
        p99_des = np.percentile(out_des.pooled_component_latencies(), 99)
        p99_vec = np.percentile(out_vec.pooled_component_latencies(), 99)
        assert p99_vec == pytest.approx(p99_des, rel=rel_p99)


class TestMixedClassCrossValidation:
    """With request classes resolved, the two simulators must agree not
    just on the pooled distribution but class by class: each class runs
    a differently-restricted DAG with its own service scaling, so a
    divergence in the class-conditional paths would hide in the pool."""

    def _run_both(self):
        from repro.scenarios import get_scenario

        spec = get_scenario("mixed-frontend")
        topo = spec.build_service(spec.runner_config(scale=0.5)).topology
        classes = topo.resolve_classes(spec.request_classes)
        assert classes is not None and classes.multi_class
        dists = _dists(topo)
        des = DESServiceSimulator(topo, dists, np.random.default_rng(10))
        out_des = des.run(arrival_rate=30.0, duration_s=400.0, classes=classes)
        out_vec = simulate_service_interval(
            topo, BasicPolicy(), 30.0, 400.0, dists,
            np.random.default_rng(11), classes=classes,
        )
        return out_des, out_vec

    def test_pooled_and_per_class_means_agree(self):
        out_des, out_vec = self._run_both()
        assert out_vec.request_latencies.mean() == pytest.approx(
            out_des.request_latencies.mean(), rel=0.08
        )
        des_cls = out_des.per_class_latencies()
        vec_cls = out_vec.per_class_latencies()
        assert set(des_cls) == set(vec_cls) == {
            "search", "autocomplete", "image-heavy",
        }
        # Measured rels are ~0.013 at these seeds; 0.10 bounds noise
        # while still catching a class routed down the wrong DAG.
        for name in des_cls:
            assert vec_cls[name].mean() == pytest.approx(
                des_cls[name].mean(), rel=0.10
            ), name

    def test_classes_actually_separate(self):
        # The cross-check is only meaningful if the classes differ:
        # autocomplete (suggest-only, x0.5) must be far below the
        # image-heavy class (mandatory image lookup, x1.6).
        out_des, _ = self._run_both()
        per = out_des.per_class_latencies()
        assert per["autocomplete"].mean() < 0.5 * per["image-heavy"].mean()

    def test_component_p99_agrees(self):
        out_des, out_vec = self._run_both()
        p99_des = np.percentile(out_des.pooled_component_latencies(), 99)
        p99_vec = np.percentile(out_vec.pooled_component_latencies(), 99)
        assert p99_vec == pytest.approx(p99_des, rel=0.15)
