"""Tests for latency metrics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import LatencySummary, percentile, pool, summarize


class TestPercentile:
    def test_nearest_rank_is_observed_value(self):
        rng = np.random.default_rng(0)
        xs = rng.exponential(1.0, 1000)
        p99 = percentile(xs, 99)
        assert p99 in xs

    def test_p0_p100(self):
        xs = [3.0, 1.0, 2.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            percentile([], 99)

    def test_bad_q_rejected(self):
        with pytest.raises(SimulationError):
            percentile([1.0], 150)


class TestSummarize:
    def test_fields(self):
        xs = np.arange(1, 101, dtype=float)
        s = summarize(xs)
        assert s.n == 100
        assert s.mean == pytest.approx(50.5)
        assert s.p50 == pytest.approx(51.0)
        assert s.p99 == pytest.approx(100.0)
        assert s.max == 100.0

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(1)
        s = summarize(rng.lognormal(0, 1, 5000))
        assert s.p50 <= s.p95 <= s.p99 <= s.max

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            summarize([-1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize([])

    def test_render_contains_stats(self):
        s = summarize([0.010, 0.020])
        out = s.render("basic")
        assert "basic" in out and "p99" in out and "ms" in out


class TestPool:
    def test_pool_mapping(self):
        pooled = pool({"a": np.array([1.0]), "b": np.array([2.0, 3.0])})
        assert sorted(pooled) == [1.0, 2.0, 3.0]

    def test_pool_skips_empty(self):
        pooled = pool({"a": np.array([]), "b": np.array([5.0])})
        assert list(pooled) == [5.0]

    def test_pool_iterable(self):
        assert pool([np.array([1.0]), np.array([2.0])]).size == 2

    def test_all_empty_rejected(self):
        with pytest.raises(SimulationError):
            pool({"a": np.array([])})


class TestDiagnosableErrors:
    """Empty-sample failures must name the offending context, not fail
    with a bare "nothing to pool"."""

    def test_pool_all_empty_names_components(self):
        with pytest.raises(SimulationError) as exc:
            pool(
                {"searching-3": np.array([]), "aggregate-0": np.array([])},
                label="interval 4",
            )
        msg = str(exc.value)
        assert "interval 4" in msg
        assert "searching-3" in msg and "aggregate-0" in msg
        assert "all 2 samples are empty" in msg

    def test_pool_all_empty_truncates_long_component_lists(self):
        samples = {f"comp-{i}": np.array([]) for i in range(20)}
        with pytest.raises(SimulationError) as exc:
            pool(samples)
        msg = str(exc.value)
        assert "all 20 samples are empty" in msg
        assert "..." in msg and "comp-19" not in msg

    def test_pool_iterable_all_empty_names_positions(self):
        with pytest.raises(SimulationError) as exc:
            pool([np.array([]), np.array([])], label="overall latencies")
        msg = str(exc.value)
        assert "overall latencies" in msg and "[0]" in msg

    def test_pool_no_samples_at_all(self):
        with pytest.raises(SimulationError) as exc:
            pool({}, label="interval 0")
        assert "no samples given" in str(exc.value)
        assert "interval 0" in str(exc.value)

    def test_percentile_empty_names_context(self):
        with pytest.raises(SimulationError) as exc:
            percentile([], 99, label="interval 7 pooled component latencies")
        assert "interval 7" in str(exc.value)

    def test_summarize_empty_names_context(self):
        with pytest.raises(SimulationError) as exc:
            summarize([], label="Basic @ 50 req/s overall latencies")
        assert "Basic @ 50 req/s" in str(exc.value)

    def test_unlabelled_errors_still_clean(self):
        with pytest.raises(SimulationError) as exc:
            percentile([], 99)
        assert "(" not in str(exc.value)


class TestLatencySummaryRoundtrip:
    def test_to_from_dict_exact(self):
        s = summarize(np.random.default_rng(3).lognormal(0, 1, 500))
        assert LatencySummary.from_dict(s.to_dict()) == s

    def test_json_roundtrip_exact(self):
        import json

        s = summarize([0.1, 0.25, 1.0 / 3.0])
        assert LatencySummary.from_dict(json.loads(json.dumps(s.to_dict()))) == s
