"""Tests for the execution-backend seam (:mod:`repro.sim.backends`)."""

import pickle
import threading
import time

import pytest

from repro.errors import ConfigurationError, WorkerTaskError
from repro.sim.backends import (
    BACKEND_NAMES,
    EXPENSIVE_POINT_CUTOFF_S,
    PROCESS_SPAWN_TAX_S,
    THREAD_AUTO_THRESHOLD,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    auto_backend,
    auto_chunk_size,
    backend_from_name,
    chunked,
    resolve_backend,
)


def _square(x: int) -> int:
    return x * x


def _fail_on_two(x: int) -> int:
    if x == 2:
        raise ValueError("deliberate failure on 2")
    return x * x


class TestSerialBackend:
    def test_map_preserves_order(self):
        assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_imap_yields_index_result_pairs(self):
        pairs = list(SerialBackend().imap_unordered(_square, [5, 6]))
        assert pairs == [(0, 25), (1, 36)]

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []

    def test_failure_wrapped_with_index_and_cause(self):
        backend = SerialBackend()
        collected = []
        with pytest.raises(WorkerTaskError) as err:
            for pair in backend.imap_unordered(_fail_on_two, [1, 2, 3]):
                collected.append(pair)
        assert err.value.index == 1
        assert isinstance(err.value.__cause__, ValueError)
        assert "deliberate failure" in str(err.value)
        # The task before the failure was yielded; the one after never ran.
        assert collected == [(0, 1)]


class TestThreadBackend:
    def test_map_matches_serial(self):
        items = list(range(12))
        assert ThreadBackend(4).map(_square, items) == [x * x for x in items]

    def test_actually_runs_on_worker_threads(self):
        names = set()

        def record(x):
            names.add(threading.current_thread().name)
            return x

        ThreadBackend(2).map(record, range(8))
        assert all(n.startswith("sweep-worker") for n in names)

    def test_failure_carries_index_and_keeps_finished_peers(self):
        # The worker thread may race ahead of the consumer, so peers
        # that finished before the failure was *observed* are yielded
        # (the sweep caches them); the failing index itself never is,
        # and the error names it.
        collected = []
        with pytest.raises(WorkerTaskError) as err:
            for pair in ThreadBackend(1).imap_unordered(
                _fail_on_two, [1, 2, 3, 4, 5]
            ):
                collected.append(pair)
        assert err.value.index == 1
        assert (0, 1) in collected
        assert all(index != 1 for index, _ in collected)
        assert all(result == [1, None, 9, 16, 25][i] for i, result in collected)

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(0)


class TestProcessBackend:
    """One spawn round-trip (slow-ish); chunked and unchunked share it."""

    def test_map_matches_serial_including_chunked(self):
        items = list(range(7))
        expected = [x * x for x in items]
        assert ProcessBackend(2).map(_square, items) == expected
        assert (
            ProcessBackend(2, chunk_size=3).map(_square, items) == expected
        )

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(0)
        with pytest.raises(ConfigurationError):
            ProcessBackend(2, chunk_size=0)


@pytest.mark.tier2
class TestProcessBackendFailure:
    def test_chunked_failure_survives_pickling_with_index(self):
        with pytest.raises(WorkerTaskError) as err:
            ProcessBackend(2, chunk_size=2).map(_fail_on_two, [1, 3, 2, 4])
        assert err.value.index == 2
        assert "deliberate failure" in str(err.value)


class TestChunked:
    def test_splits_and_preserves_order(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert chunked([1, 2], 10) == [[1, 2]]
        assert chunked([], 3) == []

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            chunked([1], 0)


class TestFactories:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_names_resolve(self, name, tmp_path):
        # The distributed backend is the one name that cannot resolve
        # without a spool directory; everything else ignores the kwarg.
        spool = tmp_path / "spool" if name == "distributed" else None
        backend = backend_from_name(name, workers=2, spool=spool)
        assert isinstance(backend, ExecutionBackend)
        assert backend.name == name

    def test_chunk_size_shapes_process_only(self):
        process = backend_from_name("process", workers=2, chunk_size=4)
        assert process.chunk_size == 4
        # Accepted and ignored elsewhere: one CLI flag set, any backend.
        assert backend_from_name("thread", workers=2, chunk_size=4).name == "thread"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="serial, thread, process"):
            backend_from_name("ssh", workers=2)

    def test_auto_rule(self):
        assert auto_backend(1, 100).name == "serial"
        assert auto_backend(4, 1).name == "serial"
        assert auto_backend(4, THREAD_AUTO_THRESHOLD).name == "thread"
        assert auto_backend(4, THREAD_AUTO_THRESHOLD + 1).name == "process"

    def test_auto_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            auto_backend(0, 5)

    def test_resolve_passthrough_and_names(self):
        ready = ThreadBackend(3)
        assert resolve_backend(ready, workers=1, n_tasks=99) is ready
        assert resolve_backend(None, 4, 2).name == "thread"
        assert resolve_backend("auto", 4, 50).name == "process"
        assert resolve_backend("serial", 4, 50).name == "serial"


class TestCostAwareAuto:
    """The ROADMAP-documented routing bug, fixed: a small grid of
    *expensive* points must spawn processes, not GIL-serialised
    threads, when the caller supplies a cost estimate."""

    def test_expensive_small_set_routes_to_process(self):
        backend = auto_backend(
            4, 4, est_cost_s=EXPENSIVE_POINT_CUTOFF_S * 5
        )
        assert isinstance(backend, ProcessBackend)
        # Expensive points keep one-point tasks (finest-grained
        # caching/failure behaviour).
        assert backend.chunk_size == 1

    def test_cheap_small_set_still_routes_to_threads(self):
        assert auto_backend(4, 4, est_cost_s=0.1).name == "thread"

    def test_cheap_large_set_gets_auto_chunking(self):
        backend = auto_backend(4, 40, est_cost_s=0.1)
        assert isinstance(backend, ProcessBackend)
        assert backend.chunk_size == auto_chunk_size(40, 4, 0.1)
        assert backend.chunk_size > 1

    def test_explicit_chunk_size_wins_over_auto(self):
        backend = auto_backend(
            4, 40, chunk_size=7, est_cost_s=EXPENSIVE_POINT_CUTOFF_S * 2
        )
        assert backend.chunk_size == 7

    def test_no_estimate_keeps_count_rule(self):
        assert auto_backend(4, THREAD_AUTO_THRESHOLD).name == "thread"
        assert auto_backend(4, THREAD_AUTO_THRESHOLD + 1).name == "process"

    def test_serial_short_circuits_regardless_of_cost(self):
        assert auto_backend(1, 4, est_cost_s=1e6).name == "serial"
        assert auto_backend(4, 1, est_cost_s=1e6).name == "serial"

    def test_negative_estimate_rejected(self):
        with pytest.raises(ConfigurationError):
            auto_backend(4, 4, est_cost_s=-1.0)

    def test_resolve_forwards_estimate(self):
        resolved = resolve_backend(
            "auto", 4, 4, est_cost_s=EXPENSIVE_POINT_CUTOFF_S * 5
        )
        assert resolved.name == "process"
        # Named backends ignore the estimate — explicit wins.
        assert resolve_backend(
            "thread", 4, 4, est_cost_s=EXPENSIVE_POINT_CUTOFF_S * 5
        ).name == "thread"

    def test_auto_chunk_size_bounds(self):
        # Enough cheap points per chunk to amortise the spawn tax...
        assert auto_chunk_size(100, 4, 0.1) == int(
            -(-PROCESS_SPAWN_TAX_S // 0.1)
        )
        # ...but never beyond an even split across the workers...
        assert auto_chunk_size(8, 4, 1e-6) == 2
        # ...and expensive points stay one per task.
        assert auto_chunk_size(100, 4, 10.0) == 1
        with pytest.raises(ConfigurationError):
            auto_chunk_size(0, 4, 1.0)


class TestWorkerTaskError:
    def test_pickle_round_trip_keeps_index(self):
        err = WorkerTaskError("task 3 raised ValueError: boom", index=3)
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, WorkerTaskError)
        assert back.index == 3
        assert "boom" in str(back)
