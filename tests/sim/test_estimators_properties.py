"""Property tests proving the streaming estimator layer honest.

:mod:`repro.sim.estimators` promises, in its docstring, a concrete
error contract; this suite enforces it:

- **P² and reservoir estimates track the exact kernel** — on
  exponential, Pareto-tailed and bimodal latency distributions the
  estimated quantiles sit within their documented *rank* error of the
  exact nearest-rank percentile (rank space is the right currency: it
  is distribution-free, so a heavy tail cannot excuse a bad estimate);
- **the exact path is permutation/partition invariant** — however the
  sample is split into batches and reordered, percentiles are
  bit-identical to one pooled pass (the property golden pins rely on);
- **reservoirs are deterministic and chunk-invariant** under
  :class:`repro.rng.RngRegistry` seeding — the kept set depends on the
  seed and the observation order, never on chunk boundaries;
- **merging is associative** — per-interval accumulators combined in
  any grouping produce the same run summary.

Two engines drive the randomised properties, mirroring
``test_metrics_properties.py``: hypothesis when importable, and a
seeded stdlib-``random`` fallback that always runs.
"""

import numpy as np
import pytest

from repro.errors import EstimatorError
from repro.monitoring.streaming import P2Quantile, StreamingMoments
from repro.rng import RngRegistry
from repro.sim.estimators import (
    DEFAULT_RESERVOIR_SIZE,
    IntervalAccumulatorSet,
    LatencyAccumulator,
    ReservoirSampler,
)
from repro.sim.metrics import percentile

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # minimal tier-1 environment
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# latency populations with qualitatively different shapes
# ----------------------------------------------------------------------
def _population(name: str, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if name == "exponential":
        return rng.exponential(0.010, n)
    if name == "pareto":  # heavy tail: infinite variance at alpha < 2
        return 0.002 * (1.0 + rng.pareto(1.5, n))
    if name == "bimodal":  # cache hit vs miss
        fast = rng.exponential(0.001, n)
        slow = 0.050 + rng.exponential(0.020, n)
        return np.where(rng.random(n) < 0.8, fast, slow)
    raise AssertionError(name)


POPULATIONS = ("exponential", "pareto", "bimodal")


def _rank_error(sample: np.ndarray, estimate: float, q: float) -> float:
    """|empirical CDF at the estimate − q/100| — distribution-free."""
    return abs(float(np.mean(sample <= estimate)) - q / 100.0)


# ----------------------------------------------------------------------
# estimator vs exact kernel, per distribution
# ----------------------------------------------------------------------
class TestEstimatorErrorContract:
    N = 40_000

    @pytest.mark.parametrize("dist", POPULATIONS)
    @pytest.mark.parametrize("q", [50.0, 95.0, 99.0])
    def test_reservoir_within_documented_rank_error(self, dist, q):
        sample = _population(dist, self.N, seed=hash(dist) % 2**31)
        acc = LatencyAccumulator(
            "streaming", rng=np.random.default_rng(5), reservoir_size=16384
        )
        # Stream in uneven chunks, as the simulator would.
        for part in np.array_split(sample, 13):
            acc.add(part)
        est = acc._reservoir.quantile(q)
        # Contract: rank error O(sqrt(q(1-q)/k)); allow 4 sigma plus the
        # 1/k nearest-rank discretisation.
        p = q / 100.0
        bound = 4.0 * np.sqrt(p * (1.0 - p) / 16384) + 1.0 / 16384
        assert _rank_error(sample, est, q) <= bound
        # The estimate is an actually observed latency (float32-rounded).
        assert np.min(np.abs(sample.astype(np.float32) - np.float32(est))) == 0.0

    @pytest.mark.parametrize("dist", POPULATIONS)
    @pytest.mark.parametrize("q", [50.0, 95.0, 99.0])
    def test_p2_tracks_exact_kernel(self, dist, q):
        sample = _population(dist, self.N, seed=1 + hash(dist) % 2**31)
        est = P2Quantile(q / 100.0)
        est.add_many(sample)
        # P² is distribution-dependent (parabolic markers); its rank
        # error on these shapes is bounded empirically at 2 percentile
        # points — far looser than the reservoir, which is why the
        # reservoir is the default engine.
        assert _rank_error(sample, float(est.estimate), q) <= 0.02

    @pytest.mark.parametrize("dist", POPULATIONS)
    def test_streaming_mean_max_n_are_exact(self, dist):
        sample = _population(dist, 10_000, seed=3)
        acc = LatencyAccumulator("streaming", rng=np.random.default_rng(0))
        for part in np.array_split(sample, 7):
            acc.add(part)
        s = acc.summary()
        assert s.n == sample.size
        assert s.max == float(sample.max())
        assert s.mean == pytest.approx(float(sample.mean()), rel=1e-12)

    def test_exact_summary_bit_identical_to_pool(self):
        sample = _population("bimodal", 5000, seed=9)
        acc = LatencyAccumulator("exact")
        for part in np.array_split(sample, 11):
            acc.add(part)
        s = acc.summary()
        assert s.p99 == percentile(sample, 99)
        assert s.p50 == percentile(sample, 50)
        assert s.mean == float(sample.mean())


# ----------------------------------------------------------------------
# shared randomised properties (engine-agnostic)
# ----------------------------------------------------------------------
def check_exact_partition_invariant(values, bounds):
    """Exact-path percentiles ignore how the sample was batched."""
    arr = np.asarray(values, dtype=np.float64)
    whole = LatencyAccumulator("exact")
    whole.add(arr)
    split = LatencyAccumulator("exact")
    for a, b in zip(bounds[:-1], bounds[1:]):
        split.add(arr[a:b])
    sw, ss = whole.summary(), split.summary()
    assert (sw.p50, sw.p95, sw.p99, sw.max, sw.n) == (
        ss.p50, ss.p95, ss.p99, ss.max, ss.n
    )


def check_exact_permutation_invariant(values, shuffler):
    arr = list(values)
    shuffled = list(values)
    shuffler(shuffled)
    a, b = LatencyAccumulator("exact"), LatencyAccumulator("exact")
    a.add(arr)
    b.add(shuffled)
    sa, sb = a.summary(), b.summary()
    # Percentiles and max are exactly permutation invariant (sorting);
    # the mean is summed in array order, so it is only float-close.
    assert (sa.p50, sa.p95, sa.p99, sa.max) == (sb.p50, sb.p95, sb.p99, sb.max)
    assert sa.mean == pytest.approx(sb.mean, rel=1e-12, abs=0.0)


def check_reservoir_chunk_invariant(values, seed, bounds):
    """The kept set — and thus every quantile — ignores chunking."""
    arr = np.asarray(values, dtype=np.float64)
    cap = 64

    def build(cuts):
        rngs = RngRegistry(seed)
        sampler = ReservoirSampler(cap, rngs.get("reservoir"))
        for a, b in zip(cuts[:-1], cuts[1:]):
            sampler.add(arr[a:b])
        return sampler

    whole = build([0, arr.size])
    split = build(bounds)
    assert whole.n_seen == split.n_seen == arr.size
    assert np.array_equal(np.sort(whole.values), np.sort(split.values))
    if arr.size:
        for q in (50.0, 99.0):
            assert whole.quantile(q) == split.quantile(q)


def check_merge_associative(values, seed, bounds):
    """((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) for streamed accumulators."""
    arr = np.asarray(values, dtype=np.float64)
    thirds = [
        arr[a:b] for a, b in zip(bounds[:-1], bounds[1:])
    ]

    def build():
        rngs = RngRegistry(seed)
        accs = []
        for i, part in enumerate(thirds):
            acc = LatencyAccumulator(
                "streaming", rng=rngs.get(f"part-{i}"), reservoir_size=32
            )
            acc.add(part)
            accs.append(acc)
        return accs

    a1, b1, c1 = build()
    left = a1.merge(b1).merge(c1)
    a2, b2, c2 = build()
    right = a2.merge(b2.merge(c2))
    assert left.n == right.n == arr.size
    if arr.size:
        sl, sr = left.summary(), right.summary()
        assert (sl.p50, sl.p95, sl.p99, sl.max, sl.n) == (
            sr.p50, sr.p95, sr.p99, sr.max, sr.n
        )
        assert sl.mean == pytest.approx(sr.mean, rel=1e-12, abs=0.0)


def check_reservoir_deterministic(values, seed):
    arr = np.asarray(values, dtype=np.float64)

    def build():
        rngs = RngRegistry(seed)
        s = ReservoirSampler(48, rngs.get("estimator-overall"))
        s.add(arr)
        return s

    s1, s2 = build(), build()
    assert np.array_equal(s1.values, s2.values)
    assert np.array_equal(s1._priorities, s2._priorities)


def _bounds(rng_draw, n, k):
    """Sorted split points 0..n from k draws."""
    cuts = sorted(rng_draw(0, n) for _ in range(k))
    return [0] + cuts + [n]


# ----------------------------------------------------------------------
# engine 1: hypothesis
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    latencies = st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=300,
    )
    seeds = st.integers(min_value=0, max_value=2**31 - 1)

    class TestHypothesisProperties:
        @given(latencies, seeds, st.integers(min_value=1, max_value=6))
        @settings(max_examples=50, deadline=None)
        def test_exact_partition_invariant(self, values, seed, k):
            rng = np.random.default_rng(seed)
            bounds = sorted(
                [0, len(values)] + list(rng.integers(0, len(values) + 1, k))
            )
            check_exact_partition_invariant(values, bounds)

        @given(latencies, st.randoms(use_true_random=False))
        @settings(max_examples=50, deadline=None)
        def test_exact_permutation_invariant(self, values, rng):
            check_exact_permutation_invariant(values, rng.shuffle)

        @given(latencies, seeds, st.integers(min_value=1, max_value=6))
        @settings(max_examples=50, deadline=None)
        def test_reservoir_chunk_invariant(self, values, seed, k):
            rng = np.random.default_rng(seed ^ 0x9E3779B9)
            bounds = sorted(
                [0, len(values)] + list(rng.integers(0, len(values) + 1, k))
            )
            check_reservoir_chunk_invariant(values, seed, bounds)

        @given(latencies, seeds)
        @settings(max_examples=50, deadline=None)
        def test_merge_associative(self, values, seed):
            rng = np.random.default_rng(seed ^ 0x51F15EED)
            bounds = sorted(
                [0, len(values)] + list(rng.integers(0, len(values) + 1, 2))
            )
            check_merge_associative(values, seed, bounds)

        @given(latencies, seeds)
        @settings(max_examples=30, deadline=None)
        def test_reservoir_deterministic(self, values, seed):
            check_reservoir_deterministic(values, seed)


# ----------------------------------------------------------------------
# engine 2: stdlib-random fallback (always runs)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(15))
class TestStdlibFallbackProperties:
    def _case(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(1, 300)
        values = [rng.uniform(0.0, 1e3) for _ in range(n)]
        if n > 2:
            values[1] = values[0]  # ties
        return rng, values

    def test_exact_partition_invariant(self, seed):
        rng, values = self._case(seed)
        check_exact_partition_invariant(
            values, _bounds(rng.randint, len(values), rng.randint(1, 5))
        )

    def test_exact_permutation_invariant(self, seed):
        rng, values = self._case(seed)
        check_exact_permutation_invariant(values, rng.shuffle)

    def test_reservoir_chunk_invariant(self, seed):
        rng, values = self._case(seed)
        check_reservoir_chunk_invariant(
            values, seed, _bounds(rng.randint, len(values), rng.randint(1, 5))
        )

    def test_merge_associative(self, seed):
        rng, values = self._case(seed)
        check_merge_associative(
            values, seed, _bounds(rng.randint, len(values), 2)
        )

    def test_reservoir_deterministic(self, seed):
        _, values = self._case(seed)
        check_reservoir_deterministic(values, seed)


# ----------------------------------------------------------------------
# moments kernel: batch fold == one-at-a-time fold
# ----------------------------------------------------------------------
class TestMomentsBatch:
    def test_add_batch_matches_add_many(self):
        rng = np.random.default_rng(2)
        xs = rng.exponential(1.0, 5000)
        one = StreamingMoments()
        one.add_many(xs)
        batched = StreamingMoments()
        for part in np.array_split(xs, 9):
            batched.add_batch(part)
        assert batched.n == one.n
        assert batched.mean == pytest.approx(one.mean, rel=1e-12)
        assert batched.variance == pytest.approx(one.variance, rel=1e-9)

    def test_add_batch_rejects_non_finite(self):
        from repro.errors import MonitoringError

        m = StreamingMoments()
        with pytest.raises(MonitoringError):
            m.add_batch([1.0, np.inf])


# ----------------------------------------------------------------------
# misuse surfaces (all EstimatorError, never silent corruption)
# ----------------------------------------------------------------------
class TestMisuse:
    def test_unknown_mode_rejected(self):
        with pytest.raises(EstimatorError):
            LatencyAccumulator("approximate")

    def test_unknown_engine_rejected(self):
        with pytest.raises(EstimatorError):
            LatencyAccumulator("streaming", engine="tdigest")

    def test_streaming_reservoir_needs_rng(self):
        with pytest.raises(EstimatorError):
            LatencyAccumulator("streaming")

    def test_mode_mismatch_merge_rejected(self):
        exact = LatencyAccumulator("exact")
        stream = LatencyAccumulator("streaming", rng=np.random.default_rng(0))
        with pytest.raises(EstimatorError):
            exact.merge(stream)

    def test_p2_merge_rejected(self):
        a = LatencyAccumulator("streaming", engine="p2")
        b = LatencyAccumulator("streaming", engine="p2")
        a.add([1.0])
        b.add([2.0])
        with pytest.raises(EstimatorError):
            a.merge(b)

    def test_capacity_mismatch_merge_rejected(self):
        rng = np.random.default_rng(0)
        a = ReservoirSampler(8, rng)
        b = ReservoirSampler(16, rng)
        with pytest.raises(EstimatorError):
            a.merge(b)

    def test_empty_streaming_summary_rejected(self):
        acc = LatencyAccumulator("streaming", rng=np.random.default_rng(0))
        with pytest.raises(EstimatorError):
            acc.summary(label="empty interval")

    def test_negative_latency_rejected(self):
        acc = LatencyAccumulator("streaming", rng=np.random.default_rng(0))
        with pytest.raises(EstimatorError):
            acc.add([-0.5])

    def test_non_finite_latency_rejected(self):
        acc = LatencyAccumulator("streaming", rng=np.random.default_rng(0))
        with pytest.raises(EstimatorError):
            acc.add([np.nan])


# ----------------------------------------------------------------------
# the per-interval accumulator set
# ----------------------------------------------------------------------
class TestIntervalAccumulatorSet:
    def _make(self, seed, class_names=None):
        rngs = RngRegistry(seed)
        return IntervalAccumulatorSet.create(
            rng_for=lambda role: rngs.get(f"estimator-{role}"),
            class_names=class_names,
            reservoir_size=64,
        )

    def test_add_chunk_routes_all_three_families(self):
        s = self._make(0, class_names=("a", "b"))
        overall = np.array([1.0, 2.0, 3.0, 4.0])
        class_of = np.array([0, 1, 0, 1])
        s.add_chunk(
            overall,
            {"x": [np.array([0.1, 0.2])], "y": [np.array([0.3])]},
            class_of,
            ("a", "b"),
        )
        assert s.overall.n == 4
        assert s.component_pool.n == 3
        assert s.per_class["a"].n == 2 and s.per_class["b"].n == 2
        assert s.per_class["a"].summary().max == 3.0

    def test_merge_is_role_by_role(self):
        a, b = self._make(1), self._make(2)
        a.add_chunk(np.array([1.0]), {}, None, None)
        b.add_chunk(np.array([2.0, 3.0]), {}, None, None)
        a.merge(b)
        assert a.overall.n == 3
        assert a.overall.summary().max == 3.0

    def test_merge_per_class_into_classless_rejected(self):
        a, b = self._make(1), self._make(2, class_names=("a",))
        b.add_chunk(np.array([1.0]), {}, np.array([0]), ("a",))
        with pytest.raises(EstimatorError):
            a.merge(b)

    def test_reservoirs_use_distinct_named_streams(self):
        s = self._make(7, class_names=("a",))
        # Same observations into each role: the kept priorities differ
        # because each reservoir draws from its own named stream.
        xs = np.arange(200, dtype=np.float64)
        s.overall.add(xs)
        s.component_pool.add(xs)
        assert not np.array_equal(
            np.sort(s.overall._reservoir.values),
            np.sort(s.component_pool._reservoir.values),
        )
