"""DAG traversal in the vectorised and DES simulators.

Two layers of pinning:

- **golden digests** — the chain scenarios' sample paths (request
  latencies and pooled sojourns) must be byte-identical to the
  pre-DAG-refactor simulator, captured from the pre-refactor tree;
- **deterministic DAG semantics** — with ``Deterministic`` service
  times and arrivals spaced far beyond the service times (no
  queueing), every request's latency is exactly the critical path over
  the stage DAG, so skip edges, parallel branches and optional stages
  can be asserted to the float.
"""

import hashlib

import numpy as np
import pytest

from repro.baselines.policies import BasicPolicy, REDPolicy, ReissuePolicy
from repro.scenarios import get_scenario
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.sim.des_service import DESServiceSimulator
from repro.sim.queue_sim import simulate_service_interval
from repro.simcore.distributions import Deterministic
from repro.units import ms


def _digest(arr) -> str:
    return hashlib.blake2b(
        np.ascontiguousarray(arr).tobytes(), digest_size=16
    ).hexdigest()


class TestChainGoldenSamplePaths:
    """The DAG refactor must not move a single byte of any chain
    scenario's sample path.  Digests captured from the pre-refactor
    tree (PR 4 head) with exactly this driver code."""

    GOLDEN = {
        "nutch-search|Basic": (
            "d13e917a762c3250f15ac9b7946fb4e8",
            "71f6e61aa42ca401b178f8eab9051192",
        ),
        "nutch-search|RED-2": (
            "1f06f05818a1a692d4f62800f9425ebc",
            "425f855f85a7b3a7886cb36a992181bf",
        ),
        "nutch-search|RI-90": (
            "1a9bd0005941c3185f6011d5332cd576",
            "1b88bc0dcacb79ceee50dd78e2f3daeb",
        ),
        "pipeline-deep|Basic": (
            "d2b00ba4152881541594c6d91313d84e",
            "a26e8dbb8c535e6b52fc4df453355f02",
        ),
        "pipeline-deep|RED-2": (
            "be8940e40068715de5fa3e946f7d42ce",
            "00ff430d753d757f708d339c7e2d56bf",
        ),
        "pipeline-deep|RI-90": (
            "a9efc4db6a00613d3cea950b9510ec1c",
            "f7843bf67f8d74441042af0ba471c14c",
        ),
        "fanout-feed|Basic": (
            "ad2eb2d3666f7885e601626178babb96",
            "aec996385c3309edbe244a4e8170f4db",
        ),
        "fanout-feed|RED-2": (
            "202eb03ad20644929860d523f6ee8bae",
            "0d5ed20f9b709a90bff540d1d20fe3e3",
        ),
        "fanout-feed|RI-90": (
            "2df1ebc9501a934779cbc32d29bae4a7",
            "1f59750136c4c001ca7ec5b3c57bc637",
        ),
    }

    SCALES = {"nutch-search": 1.0, "pipeline-deep": 0.5, "fanout-feed": 0.2}

    @pytest.mark.parametrize(
        "scenario", ["nutch-search", "pipeline-deep", "fanout-feed"]
    )
    @pytest.mark.parametrize(
        "policy", [BasicPolicy(), REDPolicy(replicas=2), ReissuePolicy(0.90)],
        ids=lambda p: p.name,
    )
    def test_sample_paths_bit_identical(self, scenario, policy):
        spec = get_scenario(scenario)
        topo = spec.build_service(
            spec.runner_config(scale=self.SCALES[scenario])
        ).topology
        assert topo.is_chain
        dists = {c.name: c.base_service for c in topo.components}
        rng = np.random.default_rng(42)
        out = simulate_service_interval(topo, policy, 50.0, 20.0, dists, rng)
        got = (
            _digest(out.request_latencies),
            _digest(out.pooled_component_latencies()),
        )
        assert got == self.GOLDEN[f"{scenario}|{policy.name}"]


def _det_stage(name, mean_s, preds=None, participation=1.0):
    return Stage(
        name,
        [
            ReplicaGroup(
                f"{name}-g0",
                [
                    Component(
                        name=f"{name}-r0",
                        cls=ComponentClass.GENERIC,
                        base_service=Deterministic(mean_s),
                    )
                ],
                participation=participation,
            )
        ],
        predecessors=preds,
    )


def _no_queue_latencies(topo, rate=0.4, duration=200.0, seed=3):
    """Latencies with arrivals so sparse that queueing never happens."""
    dists = {c.name: c.base_service for c in topo.components}
    out = simulate_service_interval(
        topo, BasicPolicy(), rate, duration, dists, np.random.default_rng(seed)
    )
    assert out.n_requests > 20
    return out.request_latencies


class TestDagSemanticsExact:
    def test_diamond_critical_path(self):
        """a -> {b, c} -> d: latency = a + max(b, c) + d, not the sum."""
        topo = ServiceTopology(
            [
                _det_stage("a", ms(1)),
                _det_stage("b", ms(5), preds=("a",)),
                _det_stage("c", ms(3), preds=("a",)),
                _det_stage("d", ms(2), preds=("b", "c")),
            ]
        )
        lat = _no_queue_latencies(topo)
        assert np.allclose(lat, ms(1) + ms(5) + ms(2))

    def test_skip_edge_is_dominated_when_branch_runs(self):
        """A skip edge never shortens the join while the long branch ran."""
        topo = ServiceTopology(
            [
                _det_stage("a", ms(1)),
                _det_stage("b", ms(5), preds=("a",)),
                _det_stage("d", ms(2), preds=("a", "b")),
            ]
        )
        lat = _no_queue_latencies(topo)
        assert np.allclose(lat, ms(1) + ms(5) + ms(2))

    def test_optional_stage_bimodal(self):
        """With the middle stage optional, latency splits into exactly
        two values: branch taken vs branch skipped via the skip edge."""
        topo = ServiceTopology(
            [
                _det_stage("a", ms(1)),
                _det_stage("b", ms(5), preds=("a",), participation=0.5),
                _det_stage("d", ms(2), preds=("a", "b")),
            ]
        )
        lat = _no_queue_latencies(topo, duration=400.0)
        with_b = ms(1) + ms(5) + ms(2)
        without_b = ms(1) + ms(2)
        taken = np.isclose(lat, with_b)
        skipped = np.isclose(lat, without_b)
        assert np.all(taken | skipped)
        # Both modes actually occur, roughly at the 0.5 split.
        frac = taken.mean()
        assert 0.3 < frac < 0.7

    def test_parallel_entries_and_exits(self):
        """Two independent entry stages; overall = max of the two."""
        topo = ServiceTopology(
            [
                _det_stage("left", ms(4)),
                _det_stage("right", ms(7), preds=()),
            ]
        )
        lat = _no_queue_latencies(topo)
        assert np.allclose(lat, ms(7))

    def test_chain_equals_sum(self):
        topo = ServiceTopology(
            [
                _det_stage("a", ms(1)),
                _det_stage("b", ms(5)),
                _det_stage("c", ms(2)),
            ]
        )
        lat = _no_queue_latencies(topo)
        assert np.allclose(lat, ms(8))

    def test_des_matches_on_deterministic_dag(self):
        """The DES realises the same critical path event-by-event."""
        topo = ServiceTopology(
            [
                _det_stage("a", ms(1)),
                _det_stage("b", ms(5), preds=("a",)),
                _det_stage("c", ms(3), preds=("a",)),
                _det_stage("d", ms(2), preds=("a", "b", "c")),
            ]
        )
        dists = {c.name: c.base_service for c in topo.components}
        out = DESServiceSimulator(
            topo, dists, np.random.default_rng(5)
        ).run(arrival_rate=0.4, duration_s=200.0)
        assert out.completed > 20
        assert out.abandoned_in_flight == 0
        assert np.allclose(out.request_latencies, ms(1) + ms(5) + ms(2))

    def test_des_optional_stage_bimodal(self):
        topo = ServiceTopology(
            [
                _det_stage("a", ms(1)),
                _det_stage("b", ms(5), preds=("a",), participation=0.5),
                _det_stage("d", ms(2), preds=("a", "b")),
            ]
        )
        dists = {c.name: c.base_service for c in topo.components}
        out = DESServiceSimulator(
            topo, dists, np.random.default_rng(6)
        ).run(arrival_rate=0.4, duration_s=400.0)
        lat = out.request_latencies
        taken = np.isclose(lat, ms(8))
        skipped = np.isclose(lat, ms(3))
        assert np.all(taken | skipped)
        assert 0.3 < taken.mean() < 0.7


class TestOptionalGroupAccounting:
    def test_skipped_requests_leave_no_sojourn_samples(self):
        """An optional group records sojourns only for participants."""
        topo = ServiceTopology(
            [
                _det_stage("a", ms(1)),
                _det_stage("b", ms(5), preds=("a",), participation=0.4),
            ]
        )
        dists = {c.name: c.base_service for c in topo.components}
        out = simulate_service_interval(
            topo, BasicPolicy(), 5.0, 100.0, dists, np.random.default_rng(9)
        )
        n = out.n_requests
        n_b = out.component_sojourns["b-r0"].size
        assert 0 < n_b < n
        assert out.component_sojourns["a-r0"].size == n
