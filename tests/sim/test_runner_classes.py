"""Runner-level request-class behaviour: the degenerate-mix
bit-identity guarantee, per-class reporting, trace profiles, and
`PolicyResult` serialisation with `per_class`."""

import dataclasses

import pytest

from repro.baselines.policies import BasicPolicy
from repro.errors import ExperimentError
from repro.scenarios import get_scenario, register_scenario
from repro.service.topology import RequestClass
from repro.sim.runner import ExperimentRunner, PolicyResult, RunnerConfig


def _quick_config(scenario_name, **overrides):
    spec = get_scenario(scenario_name)
    kwargs = dict(
        arrival_rate=30.0,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=0,
        scale=0.5,
        n_profiling_conditions=8,
    )
    kwargs.update(overrides)
    return spec.runner_config(**kwargs)


_CACHE = {}


def _run(scenario_name, **overrides):
    key = (scenario_name, tuple(sorted(overrides.items())))
    if key not in _CACHE:
        cfg = _quick_config(scenario_name, **overrides)
        _CACHE[key] = ExperimentRunner(cfg).run(BasicPolicy())
    return _CACHE[key]


class TestDegenerateMixBitIdentity:
    """Weighting a declared class out until a single default-shaped
    class remains must reproduce the class-free harness exactly —
    the contract that keeps the golden pins honest."""

    def test_unit_mix_reproduces_classless_run_bit_for_bit(self):
        baseline = _run("pipeline-deep")
        original = get_scenario("pipeline-deep")
        classed = dataclasses.replace(
            original,
            request_classes=(
                RequestClass("plain"),
                RequestClass("heavy", service_scale=2.0),
            ),
        )
        register_scenario(classed, replace_existing=True)
        try:
            cfg = _quick_config(
                "pipeline-deep",
                class_mix=(("plain", 1.0), ("heavy", 0.0)),
            )
            result = ExperimentRunner(cfg).run(BasicPolicy())
        finally:
            register_scenario(original, replace_existing=True)
        assert result.per_class is None
        assert result.metrics_dict() == baseline.metrics_dict()

    def test_classless_run_has_no_per_class_payload(self):
        baseline = _run("pipeline-deep")
        assert baseline.per_class is None
        assert "per_class" not in baseline.to_dict()
        assert "per_class" not in baseline.metrics_dict()

    def test_mix_naming_undeclared_class_fails_loudly(self):
        cfg = _quick_config(
            "mixed-frontend", class_mix=(("no-such-class", 1.0),)
        )
        with pytest.raises(Exception, match="no-such-class"):
            ExperimentRunner(cfg).run(BasicPolicy())


class TestPerClassReporting:
    def test_classes_report_distinct_latencies(self):
        result = _run("mixed-frontend")
        per = result.per_class
        assert per is not None
        assert set(per) == {"search", "autocomplete", "image-heavy"}
        # Acceptance bar: the classes must visibly separate — the
        # suggest-only x0.5 class far below the mandatory-image x1.6
        # class, on both the mean and the tail.
        assert per["autocomplete"].mean < per["search"].mean
        assert per["autocomplete"].p99 < per["search"].p99
        assert per["search"].mean < per["image-heavy"].mean
        assert sum(s.n for s in per.values()) == result.n_requests

    def test_per_class_pool_is_the_overall_pool(self):
        result = _run("mixed-frontend")
        assert result.overall_latency.n == result.n_requests

    def test_same_seed_is_deterministic_including_per_class(self):
        a = _run("mixed-frontend")
        cfg = _quick_config("mixed-frontend")
        b = ExperimentRunner(cfg).run(BasicPolicy())
        assert a.metrics_dict() == b.metrics_dict()

    def test_different_seed_differs(self):
        a = _run("mixed-frontend")
        b = _run("mixed-frontend", seed=1)
        assert a.metrics_dict() != b.metrics_dict()

    def test_class_mix_reweighting_changes_the_pool(self):
        a = _run("mixed-frontend")
        b = _run(
            "mixed-frontend",
            class_mix=(
                ("search", 0.1),
                ("autocomplete", 0.8),
                ("image-heavy", 0.1),
            ),
        )
        # Autocomplete-dominated traffic is much lighter overall.
        assert b.overall_latency.mean < a.overall_latency.mean


class TestTraceProfiles:
    def test_explicit_stationary_equals_default(self):
        default = _run("mixed-frontend")
        explicit = _run("mixed-frontend", trace_profile="stationary")
        assert explicit.metrics_dict() == default.metrics_dict()

    def test_burst_profile_changes_the_run(self):
        stationary = _run("mixed-frontend")
        burst = _run("mixed-frontend", trace_profile="burst")
        assert burst.metrics_dict() != stationary.metrics_dict()

    def test_unknown_profile_rejected(self):
        with pytest.raises(ExperimentError, match="trace profile"):
            RunnerConfig(trace_profile="full-moon")


class TestPolicyResultSerialisation:
    def test_per_class_roundtrips(self):
        result = _run("mixed-frontend")
        assert result.per_class is not None
        back = PolicyResult.from_dict(result.to_dict())
        assert back.metrics_dict() == result.metrics_dict()
        assert back.per_class == result.per_class

    def test_classless_roundtrip_stays_classless(self):
        result = _run("pipeline-deep")
        back = PolicyResult.from_dict(result.to_dict())
        assert back.per_class is None
        assert back.metrics_dict() == result.metrics_dict()


class TestRunnerConfigClassMix:
    def test_mix_canonicalised_to_tuples(self):
        cfg = RunnerConfig(class_mix=[["a", 1], ("b", 0.5)])
        assert cfg.class_mix == (("a", 1.0), ("b", 0.5))

    def test_bad_mixes_rejected(self):
        with pytest.raises(ExperimentError):
            RunnerConfig(class_mix=())
        with pytest.raises(ExperimentError):
            RunnerConfig(class_mix=(("a", 1.0), ("a", 2.0)))
        with pytest.raises(ExperimentError):
            RunnerConfig(class_mix=(("a", -1.0),))
        with pytest.raises(ExperimentError):
            RunnerConfig(class_mix=(("", 1.0),))
        with pytest.raises(ExperimentError):
            RunnerConfig(class_mix="search:1.0")
