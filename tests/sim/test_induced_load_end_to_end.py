"""Induced load end-to-end in the simulator: the effective-load
identity every kernel must satisfy after setup, the branchy-api
participation/fan-out-cap regression, realized duplicate load vs the
``InducedLoad`` prediction, adaptive-vs-fixed paired comparison, and
the digest/serialisation stability of the new recording knob."""

import dataclasses

import pytest

from repro.baselines.policies import (
    AdaptiveHedgePolicy,
    AdaptiveReissuePolicy,
    BasicPolicy,
    HedgedPolicy,
    PCSPolicy,
    REDPolicy,
    ReissuePolicy,
)
from repro.scenarios import get_scenario
from repro.service.nutch import NutchConfig
from repro.sim.runner import ExperimentRunner, PolicyResult, RunnerConfig
from repro.sim.sweep import (
    ParallelSweepRunner,
    SweepSpec,
    point_cache_key,
)

#: Every registered routing behaviour, adaptive kernels included.
ALL_KERNEL_POLICIES = [
    BasicPolicy(),
    REDPolicy(replicas=3),
    REDPolicy(replicas=5),
    ReissuePolicy(quantile=0.90),
    HedgedPolicy(),
    AdaptiveReissuePolicy(quantile=0.90),
    AdaptiveHedgePolicy(),
    PCSPolicy(),
]


def _nutch_config(arrival_rate=40.0, seed=3, **overrides):
    kwargs = dict(
        n_nodes=8,
        arrival_rate=arrival_rate,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=seed,
        nutch=NutchConfig(
            n_search_groups=3, replicas_per_group=2,
            n_segmenters=1, n_aggregators=1,
        ),
        n_profiling_conditions=6,
    )
    kwargs.update(overrides)
    return RunnerConfig(**kwargs)


def _branchy_config(**overrides):
    kwargs = dict(
        n_nodes=8, arrival_rate=40.0, interval_s=8.0, n_intervals=3,
        warmup_intervals=1, seed=0, scale=1.0, n_profiling_conditions=6,
    )
    kwargs.update(overrides)
    return get_scenario("branchy-api").runner_config(**kwargs)


class TestEffectiveLoadIdentity:
    """After ``setup``, every component's demand must equal the
    descriptor's induced replica rate — one identity per kernel."""

    @pytest.mark.parametrize(
        "policy", ALL_KERNEL_POLICIES, ids=[p.name for p in ALL_KERNEL_POLICIES]
    )
    def test_component_load_matches_induced_replica_rate(self, policy):
        cfg = _nutch_config()
        state = ExperimentRunner(cfg).setup(policy)
        induced = policy.induced_load()
        topology = state.service.topology
        for comp in state.service.components:
            group = topology.stages[comp.stage_index].groups[comp.group_index]
            expected = induced.replica_rate(
                cfg.arrival_rate, group.participation, group.n_replicas
            )
            assert comp.load_rps == expected, comp.name

    @pytest.mark.parametrize(
        "policy", ALL_KERNEL_POLICIES, ids=[p.name for p in ALL_KERNEL_POLICIES]
    )
    def test_identity_holds_with_group_participation(self, policy):
        cfg = _branchy_config()
        state = ExperimentRunner(cfg).setup(policy)
        topology = state.service.topology
        induced = policy.induced_load()
        for comp in state.service.components:
            group = topology.stages[comp.stage_index].groups[comp.group_index]
            expected = induced.replica_rate(
                cfg.arrival_rate, group.participation, group.n_replicas
            )
            assert comp.load_rps == expected, comp.name


class TestBranchyParticipationCap:
    """The full-fan-out regression: on branchy-api's optional
    2-replica recs groups (participation 0.5), a RED-5 sub-request can
    execute at most twice — the legacy scalar would have billed five
    copies to a group that cannot host them."""

    def test_red5_recs_load_is_capped_and_participation_weighted(self):
        cfg = _branchy_config()
        state = ExperimentRunner(cfg).setup(REDPolicy(replicas=5))
        recs = [c for c in state.service.components if c.name.startswith("recs-")]
        assert len(recs) == 4  # 2 groups x 2 replicas at scale 1
        for comp in recs:
            # participation x capped copies x rate / replicas
            assert comp.load_rps == 0.5 * 2.0 * cfg.arrival_rate / 2
            # NOT the legacy full-fan-out accounting.
            assert comp.load_rps != 0.5 * 5.0 * cfg.arrival_rate / 2

    def test_optional_profile_stage_scales_by_participation(self):
        cfg = _branchy_config()
        state = ExperimentRunner(cfg).setup(BasicPolicy())
        profile = [
            c for c in state.service.components
            if c.name.startswith("profile-")
        ]
        assert len(profile) == 3
        for comp in profile:
            assert comp.load_rps == 0.85 * cfg.arrival_rate / 3


class TestRealizedVsPredictedDuplicates:
    """Satellite: the measured duplicate rate must track the
    ``InducedLoad`` prediction, across rates straddling the nutch
    crossover region."""

    def _run(self, policy, rate, seed=3):
        cfg = _nutch_config(arrival_rate=rate, seed=seed,
                            record_induced_load=True)
        return ExperimentRunner(cfg).run(policy)

    def _predicted_extra(self, policy, state_cfg=None):
        """Sum over groups of participation x (group_multiplier - 1):
        expected extra executions per request on the tiny nutch shape
        (3 searching groups of 2, single-replica seg/agg groups)."""
        induced = policy.induced_load()
        cfg = state_cfg or _nutch_config()
        state = ExperimentRunner(cfg).setup(BasicPolicy())
        total = 0.0
        for stage in state.service.topology.stages:
            for group in stage.groups:
                total += group.participation * (
                    induced.group_multiplier(group.n_replicas) - 1.0
                )
        return total

    def test_basic_records_zero_duplicates(self):
        result = self._run(BasicPolicy(), 40.0)
        assert result.per_interval_duplicate_load == [0.0, 0.0]
        assert result.duplicate_load == 0.0

    @pytest.mark.parametrize("rate", [20.0, 120.0])
    def test_reissue_duplicates_match_quantile_at_any_load(self, rate):
        # Percentile reissue backs up ~ (1 - q) of sub-requests per
        # multi-replica group *by construction*, at light or heavy
        # load — 3 groups x 0.1 here.  CI bound: 2x either way.
        result = self._run(ReissuePolicy(quantile=0.90), rate)
        predicted = self._predicted_extra(ReissuePolicy(quantile=0.90))
        assert predicted == pytest.approx(3 * (1.0 - 0.90))
        assert predicted / 2 < result.duplicate_load < predicted * 2

    @pytest.mark.parametrize("rate", [20.0, 120.0])
    def test_red_duplicates_bounded_by_capped_prediction(self, rate):
        # The static bound assumes no cancellation succeeds; realized
        # duplicates must stay below it and above zero (cancellation
        # is imperfect but not absent).
        result = self._run(REDPolicy(replicas=3), rate)
        bound = self._predicted_extra(REDPolicy(replicas=3))
        assert bound == pytest.approx(3 * 1.0)  # capped at 2 copies/group
        assert 0.0 < result.duplicate_load <= bound

    def test_adaptive_reissue_converges_to_same_fraction(self):
        fixed = self._run(ReissuePolicy(quantile=0.90), 40.0)
        adaptive = self._run(AdaptiveReissuePolicy(quantile=0.90), 40.0)
        predicted = self._predicted_extra(ReissuePolicy(quantile=0.90))
        assert predicted / 2 < adaptive.duplicate_load < predicted * 2
        # Same declared induced load, same ballpark realized load.
        assert adaptive.duplicate_load == pytest.approx(
            fixed.duplicate_load, rel=0.5
        )


class TestAdaptiveVsFixedPaired:
    """Adaptive kernels judged against their fixed counterparts on
    shared seeds through the aggregate layer's paired statistics."""

    @pytest.fixture(scope="class")
    def summary(self):
        spec = SweepSpec(
            base=_nutch_config(),
            policies=(
                ReissuePolicy(quantile=0.90),
                AdaptiveReissuePolicy(quantile=0.90),
            ),
            arrival_rates=(40.0,),
            seeds=(0, 1, 2),
        )
        return ParallelSweepRunner(spec, workers=1).run().summary()

    def test_paired_diff_is_finite_and_tight(self, summary):
        diff = summary.paired_diff(
            "ARI-90", "RI-90", 40.0, metrics=["overall_latency.mean"]
        )["overall_latency.mean"]
        assert diff.t_lo <= diff.mean <= diff.t_hi
        # Shared seeds: the paired interval is tighter than the spread
        # of either marginal, and the two policies stay within 50% of
        # each other on this quiet grid.
        a = summary.seed_mean("ARI-90", 40.0, "overall_latency.mean")
        b = summary.seed_mean("RI-90", 40.0, "overall_latency.mean")
        assert a == pytest.approx(b, rel=0.5)
        assert diff.mean == pytest.approx(a - b)


class TestDigestAndSerialisationStability:
    """The recording knob must not move existing cache digests, and
    the recorded series must round-trip only when present."""

    def test_default_config_digest_unchanged_by_new_field(self):
        cfg = _nutch_config()
        key = point_cache_key(cfg, BasicPolicy())
        # Explicit default == omitted default == same digest...
        explicit = dataclasses.replace(cfg, record_induced_load=False)
        assert point_cache_key(explicit, BasicPolicy()) == key
        # ...and the canonical payload does not even mention the field,
        # so pre-refactor caches keep validating.
        from repro.sim.sweep import _canonical

        assert "record_induced_load" not in _canonical(cfg)
        # Turning recording on IS a different point.
        recording = dataclasses.replace(cfg, record_induced_load=True)
        assert point_cache_key(recording, BasicPolicy()) != key

    def test_metrics_identical_with_and_without_recording(self):
        # Recording is observational: the sample paths and every
        # deterministic metric must be bit-identical either way.
        plain = ExperimentRunner(_nutch_config()).run(
            ReissuePolicy(quantile=0.90)
        )
        recorded = ExperimentRunner(
            _nutch_config(record_induced_load=True)
        ).run(ReissuePolicy(quantile=0.90))
        got = recorded.metrics_dict()
        series = got.pop("per_interval_duplicate_load")
        assert got == plain.metrics_dict()
        assert len(series) == 2  # the recorded extra, measured intervals
        assert plain.duplicate_load is None
        assert recorded.duplicate_load is not None

    def test_serialised_only_when_recorded(self):
        plain = ExperimentRunner(_nutch_config()).run(BasicPolicy())
        recorded = ExperimentRunner(
            _nutch_config(record_induced_load=True)
        ).run(BasicPolicy())
        assert "per_interval_duplicate_load" not in plain.to_dict()
        assert "per_interval_duplicate_load" in recorded.to_dict()

    def test_roundtrip_preserves_series(self):
        recorded = ExperimentRunner(
            _nutch_config(record_induced_load=True)
        ).run(ReissuePolicy(quantile=0.90))
        back = PolicyResult.from_dict(recorded.to_dict())
        assert back.per_interval_duplicate_load == (
            recorded.per_interval_duplicate_load
        )
        assert back.metrics_dict() == recorded.metrics_dict()
        plain = ExperimentRunner(_nutch_config()).run(BasicPolicy())
        assert PolicyResult.from_dict(
            plain.to_dict()
        ).per_interval_duplicate_load is None

    def test_render_shows_duplicate_load_only_when_recorded(self):
        plain = ExperimentRunner(_nutch_config()).run(BasicPolicy())
        recorded = ExperimentRunner(
            _nutch_config(record_induced_load=True)
        ).run(ReissuePolicy(quantile=0.90))
        assert "dup load" not in plain.render()
        assert "dup load" in recorded.render()
