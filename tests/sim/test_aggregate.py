"""Tests for the seed-level statistics layer (:mod:`repro.sim.aggregate`)."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.baselines.policies import BasicPolicy, REDPolicy
from repro.errors import ExperimentError
from repro.rng import RngRegistry
from repro.service.nutch import NutchConfig
from repro.sim.aggregate import (
    AggregateConfig,
    MetricStats,
    SeedAggregate,
    SweepSummary,
    flatten_metrics,
    student_t_ppf,
)
from repro.sim.metrics import percentile
from repro.sim.runner import PolicyResult, RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepCache, SweepSpec


def _tiny_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        base=RunnerConfig(
            n_nodes=6,
            arrival_rate=40.0,
            interval_s=8.0,
            n_intervals=3,
            warmup_intervals=1,
            seed=0,
            nutch=NutchConfig(
                n_search_groups=3, replicas_per_group=2,
                n_segmenters=1, n_aggregators=1,
            ),
            n_profiling_conditions=8,
        ),
        policies=(BasicPolicy(), REDPolicy(replicas=2)),
        arrival_rates=(30.0,),
        seeds=(0, 1, 2),
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


@pytest.fixture(scope="module")
def tiny_sweep(tmp_path_factory):
    """One cached 2-policy × 1-rate × 3-seed sweep, shared module-wide."""
    spec = _tiny_spec()
    cache = SweepCache(tmp_path_factory.mktemp("agg-cache"))
    result = ParallelSweepRunner(spec, workers=1, cache=cache).run()
    return spec, cache, result


class TestStudentT:
    def test_symmetry_and_median(self):
        assert student_t_ppf(0.5, 7) == 0.0
        assert student_t_ppf(0.2, 7) == -student_t_ppf(0.8, 7)

    def test_known_tabulated_values(self):
        # Classic t-table entries (two-sided 95% => p = 0.975).
        for df, expected in [(1, 12.7062), (4, 2.7764), (9, 2.2622), (29, 2.0452)]:
            assert student_t_ppf(0.975, df) == pytest.approx(expected, abs=2e-4)

    def test_matches_scipy_when_available(self):
        sps = pytest.importorskip("scipy.stats")
        for df in (1, 2, 5, 17, 40):
            for p in (0.6, 0.9, 0.975, 0.995):
                assert student_t_ppf(p, df) == pytest.approx(
                    float(sps.t.ppf(p, df)), abs=1e-9
                )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ExperimentError):
            student_t_ppf(0.0, 5)
        with pytest.raises(ExperimentError):
            student_t_ppf(1.0, 5)
        with pytest.raises(ExperimentError):
            student_t_ppf(0.9, 0)


class TestFlattenMetrics:
    def test_nested_scalars_dotted(self):
        flat = flatten_metrics(
            {
                "component_latency": {"p99": 0.5, "n": 10},
                "n_migrations": 3,
                "policy_name": "Basic",
                "per_interval_overall_mean": [0.1, 0.2],
            }
        )
        assert flat == {
            "component_latency.p99": 0.5,
            "component_latency.n": 10.0,
            "n_migrations": 3.0,
        }

    def test_real_metrics_dict(self, tiny_sweep):
        _, _, result = tiny_sweep
        some = next(iter(result.results.values()))
        flat = flatten_metrics(some.metrics_dict())
        assert "component_latency.p99" in flat
        assert "overall_latency.mean" in flat
        assert "policy_name" not in flat
        assert not any(k.startswith("per_interval") for k in flat)
        assert all(isinstance(v, float) for v in flat.values())


class TestMetricStats:
    CFG = AggregateConfig()

    def test_basic_statistics(self):
        s = MetricStats.compute([1.0, 2.0, 3.0, 4.0], RngRegistry(0).get("x"), self.CFG)
        assert s.n == 4 and s.mean == 2.5
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert (s.min, s.max) == (1.0, 4.0)
        assert s.p50 == 3.0  # nearest-rank "higher", an observed value

    def test_t_interval_formula(self):
        values = [1.0, 2.0, 3.0, 4.0]
        s = MetricStats.compute(values, RngRegistry(0).get("x"), self.CFG)
        half = student_t_ppf(0.975, 3) * s.std / math.sqrt(4)
        assert s.t_lo == pytest.approx(s.mean - half)
        assert s.t_hi == pytest.approx(s.mean + half)

    def test_single_value_degenerates(self):
        s = MetricStats.compute([7.5], None, self.CFG)
        assert s.std == 0.0
        assert s.t_lo == s.t_hi == s.boot_lo == s.boot_hi == s.mean == 7.5

    def test_bootstrap_bounds_are_nearest_rank_observed_means(self):
        # Replaying the same RNG stream must reproduce the bounds via
        # the shared nearest-rank kernel — the documented convention.
        values = np.array([1.0, 2.0, 4.0, 8.0])
        rngs = RngRegistry(self.CFG.bootstrap_seed)
        s = MetricStats.compute(values, rngs.get("boot"), self.CFG)
        replay = RngRegistry(self.CFG.bootstrap_seed).get("boot")
        idx = replay.integers(0, 4, size=(self.CFG.bootstrap_resamples, 4))
        means = values[idx].mean(axis=1)
        assert s.boot_lo == percentile(means, 2.5)
        assert s.boot_hi == percentile(means, 97.5)
        assert s.boot_lo in means and s.boot_hi in means

    def test_roundtrip_exact(self):
        s = MetricStats.compute(
            [0.1, 0.7, 1.9], RngRegistry(3).get("y"), self.CFG
        )
        back = MetricStats.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back == s

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            MetricStats.compute([], RngRegistry(0).get("x"), self.CFG)


class TestSeedAggregate:
    def test_order_independence(self):
        a = SeedAggregate.from_records(
            "Basic", 50.0, {0: {"m": 1.0}, 1: {"m": 2.0}, 2: {"m": 4.0}}
        )
        b = SeedAggregate.from_records(
            "Basic", 50.0, {2: {"m": 4.0}, 0: {"m": 1.0}, 1: {"m": 2.0}}
        )
        assert a == b  # completion order must not leak into statistics

    def test_mismatched_metric_sets_rejected(self):
        with pytest.raises(ExperimentError):
            SeedAggregate.from_records(
                "Basic", 50.0, {0: {"m": 1.0}, 1: {"other": 2.0}}
            )

    def test_unknown_metric_named(self):
        agg = SeedAggregate.from_records("Basic", 50.0, {0: {"m": 1.0}})
        with pytest.raises(ExperimentError, match="no metric 'nope'"):
            agg["nope"]

    def test_roundtrip(self):
        agg = SeedAggregate.from_records(
            "RED-2", 70.0, {0: {"m": 1.0, "k": 9.0}, 1: {"m": 3.0, "k": 9.0}}
        )
        back = SeedAggregate.from_dict(json.loads(json.dumps(agg.to_dict())))
        assert back == agg


class TestSweepSummary:
    def test_groups_cover_grid(self, tiny_sweep):
        spec, _, result = tiny_sweep
        summary = result.summary()
        assert summary.seeds == spec.seeds
        assert summary.policies() == ["Basic", "RED-2"]
        assert summary.rates() == [30.0]
        agg = summary.get("Basic", 30.0)
        assert agg.seeds == spec.seeds

    def test_means_match_manual_reduction(self, tiny_sweep):
        spec, _, result = tiny_sweep
        summary = result.summary()
        per_seed = [
            result.get("Basic", 30.0, seed=s).component_p99_s
            for s in spec.seeds
        ]
        assert summary.seed_mean(
            "Basic", 30.0, "component_latency.p99"
        ) == float(np.mean(per_seed))

    def test_from_cache_is_bit_identical(self, tiny_sweep):
        _, cache, result = tiny_sweep
        assert SweepSummary.from_cache(cache).to_dict() == result.summary().to_dict()

    def test_from_cache_missing_points_fail_loudly(self, tiny_sweep, tmp_path):
        _, cache, _ = tiny_sweep
        import shutil

        clone = tmp_path / "clone"
        shutil.copytree(cache.root, clone)
        partial = SweepCache(clone)
        victim = next(iter(partial.manifest()["points"]))
        partial.path_for(victim).unlink()
        with pytest.raises(ExperimentError, match="missing"):
            SweepSummary.from_cache(partial)

    def test_roundtrip(self, tiny_sweep):
        _, _, result = tiny_sweep
        summary = result.summary()
        back = SweepSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert back.to_dict() == summary.to_dict()
        assert back.seeds == summary.seeds

    def test_render_table(self, tiny_sweep):
        _, _, result = tiny_sweep
        out = result.summary().render_table()
        assert "component_latency.p99" in out
        assert "±" in out and "[" in out
        assert "Basic" in out and "RED-2" in out

    def test_determinism_across_rebuilds(self, tiny_sweep):
        _, _, result = tiny_sweep
        assert result.summary().to_dict() == result.summary().to_dict()

    def test_unknown_cell_named(self, tiny_sweep):
        _, _, result = tiny_sweep
        with pytest.raises(ExperimentError, match="no aggregated cell"):
            result.summary().get("PCS", 30.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ExperimentError):
            AggregateConfig(confidence=1.5)
        with pytest.raises(ExperimentError):
            AggregateConfig(bootstrap_resamples=0)
        with pytest.raises(ExperimentError):
            SweepSummary.from_grouped({})


class TestPairedDiff:
    """Shared-seed paired differences (PCS − baseline style)."""

    def _summary(self, tiny_sweep) -> SweepSummary:
        _, _, result = tiny_sweep
        return result.summary()

    def test_deltas_are_per_seed_differences(self, tiny_sweep):
        summary = self._summary(tiny_sweep)
        metric = "overall_latency.mean"
        diff = summary.paired_diff("RED-2", "Basic", 30.0, metrics=[metric])
        red = summary.get("RED-2", 30.0)[metric]
        basic = summary.get("Basic", 30.0)[metric]
        expected = tuple(a - b for a, b in zip(red.values, basic.values))
        assert diff[metric].values == expected
        assert diff[metric].mean == pytest.approx(red.mean - basic.mean)

    def test_default_metrics_are_the_shared_set(self, tiny_sweep):
        summary = self._summary(tiny_sweep)
        diff = summary.paired_diff("RED-2", "Basic", 30.0)
        a = summary.get("RED-2", 30.0)
        b = summary.get("Basic", 30.0)
        assert set(diff) == set(a.stats) & set(b.stats)

    def test_deterministic_across_calls(self, tiny_sweep):
        summary = self._summary(tiny_sweep)
        one = summary.paired_diff("RED-2", "Basic", 30.0)
        two = summary.paired_diff("RED-2", "Basic", 30.0)
        assert {k: v.to_dict() for k, v in one.items()} == {
            k: v.to_dict() for k, v in two.items()
        }

    def test_interval_is_tighter_than_marginal_width_sum(self, tiny_sweep):
        """Shared seeds correlate the two cells, so the paired interval
        must undercut the naive width of differencing independent CIs
        (sum of the marginal half-widths)."""
        summary = self._summary(tiny_sweep)
        metric = "overall_latency.mean"
        diff = summary.paired_diff("RED-2", "Basic", 30.0, metrics=[metric])[metric]
        a = summary.get("RED-2", 30.0)[metric]
        b = summary.get("Basic", 30.0)[metric]
        paired_half = 0.5 * (diff.t_hi - diff.t_lo)
        naive_half = 0.5 * (a.t_hi - a.t_lo) + 0.5 * (b.t_hi - b.t_lo)
        assert paired_half < naive_half

    def test_mismatched_seed_sets_rejected(self, tiny_sweep):
        _, _, result = tiny_sweep
        grouped = {}
        for point, res in result.results.items():
            grouped.setdefault(
                (point.policy.name, point.arrival_rate), {}
            )[point.seed] = res
        del grouped[("RED-2", 30.0)][2]  # drop one seed from one cell
        lopsided = SweepSummary.from_grouped(grouped)
        with pytest.raises(ExperimentError, match="identical seed sets"):
            lopsided.paired_diff("RED-2", "Basic", 30.0)

    def test_single_seed_degenerates(self, tiny_sweep):
        _, _, result = tiny_sweep
        grouped = {}
        for point, res in result.results.items():
            if point.seed != 0:
                continue
            grouped[(point.policy.name, point.arrival_rate)] = {0: res}
        summary = SweepSummary.from_grouped(grouped)
        metric = "overall_latency.mean"
        diff = summary.paired_diff("RED-2", "Basic", 30.0, metrics=[metric])[metric]
        assert diff.n == 1
        assert diff.t_lo == diff.t_hi == diff.mean


class TestCrossRunCompare:
    """`aggregate --compare`'s engine: paired per-seed differences
    between two summaries of the same grid (SweepSummary.compare)."""

    def _two_summaries(self, tiny_sweep):
        _, _, result = tiny_sweep
        mine = result.summary()
        # A synthetic "other run": every metric shifted by a constant,
        # so the paired deltas are exactly that constant with zero std.
        shift = 0.001
        grouped = {}
        for point, res in result.results.items():
            shifted = PolicyResult.from_dict(res.to_dict())
            shifted.overall_latency = dataclasses.replace(
                res.overall_latency, mean=res.overall_latency.mean + shift
            )
            grouped.setdefault(
                (point.policy.name, point.arrival_rate), {}
            )[point.seed] = shifted
        return mine, SweepSummary.from_grouped(grouped), shift

    def test_identical_runs_diff_to_zero(self, tiny_sweep):
        _, _, result = tiny_sweep
        mine = result.summary()
        diffs = mine.compare(result.summary())
        for per_metric in diffs.values():
            for stats in per_metric.values():
                assert stats.mean == 0.0
                assert stats.std == 0.0

    def test_constant_shift_recovered_exactly(self, tiny_sweep):
        mine, other, shift = self._two_summaries(tiny_sweep)
        metric = "overall_latency.mean"
        diffs = mine.compare(other, metrics=[metric])
        for per_metric in diffs.values():
            stats = per_metric[metric]
            assert stats.mean == pytest.approx(-shift)
            assert stats.std == pytest.approx(0.0, abs=1e-12)

    def test_mismatched_seed_sets_is_clear_error(self, tiny_sweep):
        _, _, result = tiny_sweep
        mine = result.summary()
        grouped = {}
        for point, res in result.results.items():
            if point.seed == 2:
                continue  # the other run used fewer seeds
            grouped.setdefault(
                (point.policy.name, point.arrival_rate), {}
            )[point.seed] = res
        other = SweepSummary.from_grouped(grouped)
        with pytest.raises(ExperimentError, match="different seed sets"):
            mine.compare(other)

    def test_disjoint_grids_is_clear_error(self, tiny_sweep):
        _, _, result = tiny_sweep
        mine = result.summary()
        grouped = {
            ("Basic", 999.0): {
                p.seed: r
                for p, r in result.results.items()
                if p.policy.name == "Basic"
            }
        }
        other = SweepSummary.from_grouped(grouped)
        with pytest.raises(ExperimentError, match="share no"):
            mine.compare(other)

    def test_unmatched_cells_listed_not_fatal(self, tiny_sweep):
        _, _, result = tiny_sweep
        mine = result.summary()
        grouped = {}
        for point, res in result.results.items():
            grouped.setdefault(
                (point.policy.name, point.arrival_rate), {}
            )[point.seed] = res
        # The other run additionally swept a rate mine doesn't have.
        grouped[("Basic", 777.0)] = grouped[("Basic", 30.0)]
        other = SweepSummary.from_grouped(grouped)
        only_mine, only_theirs = mine.unmatched_cells(other)
        assert only_mine == []
        assert only_theirs == [("Basic", 777.0)]
        table = mine.render_compare_table(other)
        assert "Basic@777" in table

    def test_deterministic_across_calls(self, tiny_sweep):
        mine, other, _ = self._two_summaries(tiny_sweep)
        one = mine.compare(other)
        two = mine.compare(other)
        assert {
            cell: {m: s.to_dict() for m, s in stats.items()}
            for cell, stats in one.items()
        } == {
            cell: {m: s.to_dict() for m, s in stats.items()}
            for cell, stats in two.items()
        }


class TestBCaBootstrap:
    """``AggregateConfig(ci_method="bca")`` — bias-corrected and
    accelerated intervals sharing the percentile method's RNG draw."""

    def test_unknown_method_rejected(self):
        with pytest.raises(ExperimentError, match="ci_method"):
            AggregateConfig(ci_method="jackknife")

    def test_config_roundtrip_preserves_method(self):
        cfg = AggregateConfig(ci_method="bca")
        back = AggregateConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back == cfg
        # Pre-BCa payloads (no ci_method key) read as percentile.
        legacy = dict(cfg.to_dict())
        legacy.pop("ci_method")
        assert AggregateConfig.from_dict(legacy).ci_method == "percentile"

    def test_same_rng_stream_for_both_methods(self):
        """Switching method must not perturb anything but the CI
        bounds: mean/std/t-interval are bit-identical, and both sets of
        bounds are observed resample means from the *same* draw."""
        values = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        p = MetricStats.compute(
            values, RngRegistry(0).get("b"), AggregateConfig()
        )
        b = MetricStats.compute(
            values, RngRegistry(0).get("b"), AggregateConfig(ci_method="bca")
        )
        assert (b.n, b.mean, b.std, b.t_lo, b.t_hi) == (
            p.n, p.mean, p.std, p.t_lo, p.t_hi,
        )
        replay = RngRegistry(0).get("b")
        idx = replay.integers(0, 5, size=(1000, 5))
        means = values[idx].mean(axis=1)
        for bound in (p.boot_lo, p.boot_hi, b.boot_lo, b.boot_hi):
            assert bound in means

    def test_symmetric_sample_agrees_with_percentile(self):
        """On a symmetric sample the bias correction and acceleration
        are both ~0, so BCa lands within a fraction of the percentile
        interval's width of the percentile bounds."""
        rng = np.random.default_rng(5)
        values = rng.normal(10.0, 1.0, size=40)
        p = MetricStats.compute(
            values, RngRegistry(0).get("s"), AggregateConfig()
        )
        b = MetricStats.compute(
            values, RngRegistry(0).get("s"), AggregateConfig(ci_method="bca")
        )
        width = p.boot_hi - p.boot_lo
        assert width > 0
        assert abs(b.boot_lo - p.boot_lo) < 0.35 * width
        assert abs(b.boot_hi - p.boot_hi) < 0.35 * width

    def test_right_skewed_sample_shifts_upper_bound_right(self):
        """Right-skewed seed metrics (latency-like) are exactly the
        case BCa exists for: the interval shifts toward the long tail."""
        rng = np.random.default_rng(7)
        values = rng.lognormal(0.0, 1.2, size=60)
        p = MetricStats.compute(
            values, RngRegistry(0).get("k"), AggregateConfig()
        )
        b = MetricStats.compute(
            values, RngRegistry(0).get("k"), AggregateConfig(ci_method="bca")
        )
        assert b.boot_hi > p.boot_hi

    def test_constant_sample_degenerates_cleanly(self):
        """All-equal values: the bias correction is undefined (no
        resample mean below the observed mean), so BCa falls back to
        the plain percentile ranks instead of emitting NaNs."""
        s = MetricStats.compute(
            [3.0, 3.0, 3.0, 3.0], RngRegistry(0).get("c"),
            AggregateConfig(ci_method="bca"),
        )
        assert s.boot_lo == s.boot_hi == 3.0

    def test_deterministic_across_calls(self):
        cfg = AggregateConfig(ci_method="bca")
        values = [0.3, 1.1, 2.9, 7.7, 9.2]
        a = MetricStats.compute(values, RngRegistry(4).get("d"), cfg)
        b = MetricStats.compute(values, RngRegistry(4).get("d"), cfg)
        assert a == b
