"""Tier-2 memory-ceiling regression: 10⁶ arrivals, O(chunk) memory.

Drives one fanout-feed interval with over a million Poisson arrivals
through the chunked streaming path and asserts — under tracemalloc —
that peak memory stays below a fixed budget that the monolithic pass
(O(requests) sample arrays, several hundred MiB at this scale) cannot
possibly meet.  This is the enforcement half of the contract whose
before/after numbers ``benchmarks/bench_stream_scale.py`` records.
"""

import tracemalloc

import pytest

from repro.baselines.policies import BasicPolicy
from repro.rng import RngRegistry
from repro.scenarios import get_scenario
from repro.sim.estimators import IntervalAccumulatorSet
from repro.sim.queue_sim import simulate_service_interval

#: Stable fanout-feed rate (shard bound ~1360 req/s) x duration that
#: puts the expected arrival count just past one million.
RATE = 1200.0
DURATION_S = 850.0
CHUNK = 32768

#: Hard ceiling for the streamed pass.  The working set is O(chunk x
#: groups) plus the reservoirs; measured peaks sit well under half of
#: this, while the monolithic pass needs hundreds of MiB.
PEAK_BUDGET_MIB = 120


@pytest.mark.tier2
def test_million_request_interval_within_memory_budget():
    spec = get_scenario("fanout-feed")
    topology = spec.build_service(spec.runner_config()).topology
    dists = {c.name: c.base_service for c in topology.components}

    rngs = RngRegistry(0)
    stream = IntervalAccumulatorSet.create(
        rng_for=lambda role: rngs.get(f"estimator-{role}")
    )
    tracemalloc.start()
    outcome = simulate_service_interval(
        topology, BasicPolicy(), RATE, DURATION_S, dists,
        rngs.get("requests"),
        chunk_requests=CHUNK, stream_into=stream,
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert stream.overall.n > 1_000_000
    assert outcome.streaming is stream
    assert outcome.request_latencies.size == 0  # nothing retained
    peak_mib = peak / 2**20
    assert peak_mib < PEAK_BUDGET_MIB, (
        f"streamed 10^6-request interval peaked at {peak_mib:.0f} MiB "
        f"(budget {PEAK_BUDGET_MIB} MiB)"
    )
    # The summaries the memory bound pays for are actually usable.
    summary = stream.overall.summary()
    assert 0 < summary.p50 < summary.p99 <= summary.max
