"""The Alibaba-style call-graph importer (`scenarios/callgraph.py`):
schema validation, deterministic topology construction, class
declarations, and registry behaviour."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import get_scenario, scenario_from_callgraph
from repro.scenarios.callgraph import load_callgraph
from repro.scenarios.spec import _REGISTRY
from repro.service.component import ComponentClass


def _graph(**overrides):
    g = {
        "name": "cg-test",
        "description": "frontend fanning out to two backends",
        "services": {
            "frontend": {"mean_service_ms": 1.0, "replicas": 2},
            "search": {
                "mean_service_ms": 4.0, "scv": 0.8, "replicas": 3,
                "class": "searching",
            },
            "ads": {
                "mean_service_ms": 2.0, "replicas": 2,
                "participation": 0.5,
            },
            "blend": {
                "mean_service_ms": 1.5, "replicas": 2,
                "class": "aggregating",
            },
        },
        "edges": [
            ["frontend", "search"],
            ["frontend", "ads"],
            ["search", "blend"],
            ["ads", "blend"],
        ],
        "classes": [
            {"name": "organic", "weight": 0.7,
             "participation": {"ads": 0.0}},
            {"name": "monetised", "weight": 0.3, "service_scale": 1.2},
        ],
    }
    g.update(overrides)
    return g


@pytest.fixture
def registry_guard():
    """Drop any scenario the test registered."""
    before = set(_REGISTRY)
    yield
    for name in set(_REGISTRY) - before:
        del _REGISTRY[name]


class TestLoadCallgraph:
    def test_normalises_and_defaults(self):
        g = load_callgraph(_graph())
        assert g["name"] == "cg-test"
        front = g["services"]["frontend"]
        assert front["scv"] == 0.5  # default
        assert front["class"] is ComponentClass.GENERIC
        assert front["participation"] == 1.0
        assert g["services"]["search"]["class"] is ComponentClass.SEARCHING
        assert [c.name for c in g["classes"]] == ["organic", "monetised"]

    def test_duplicate_edges_deduped(self):
        g = load_callgraph(
            _graph(edges=[["frontend", "search"], ["frontend", "search"],
                          ["frontend", "ads"], ["search", "blend"],
                          ["ads", "blend"]])
        )
        assert g["edges"].count(("frontend", "search")) == 1

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text(json.dumps(_graph()))
        assert load_callgraph(path) == load_callgraph(_graph())

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_callgraph(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_callgraph(bad)

    @pytest.mark.parametrize(
        "mutate,message",
        [
            (lambda g: g.pop("name"), "non-empty 'name'"),
            (lambda g: g.update(services={}), "'services'"),
            (
                lambda g: g["services"]["search"].update(mean_service_ms=0),
                "mean_service_ms",
            ),
            (lambda g: g["services"]["search"].update(scv=-1), "scv"),
            (
                lambda g: g["services"]["search"].update(replicas=0),
                "replicas",
            ),
            (
                lambda g: g["services"]["search"].update(replicas=2.5),
                "replicas",
            ),
            (
                lambda g: g["services"]["search"].update({"class": "webby"}),
                "unknown",
            ),
            (
                lambda g: g["services"]["ads"].update(participation=0.0),
                r"participation must lie in \(0, 1\]",
            ),
            (
                lambda g: g["edges"].append(["blend", "nowhere"]),
                "unknown service 'nowhere'",
            ),
            (lambda g: g["edges"].append(["blend", "blend"]), "self-call"),
            (
                lambda g: g["classes"][0]["participation"].update(nope=0.5),
                "unknown services",
            ),
            (lambda g: g["classes"].append({"weight": 1.0}), "need a 'name'"),
        ],
    )
    def test_schema_violations_rejected(self, mutate, message):
        g = _graph()
        mutate(g)
        with pytest.raises(ConfigurationError, match=message):
            load_callgraph(g)


class TestTopologyConstruction:
    def test_builds_topologically_ordered_stages(self, registry_guard):
        spec = scenario_from_callgraph(_graph())
        topo = spec.build_service(spec.runner_config()).topology
        names = [s.name for s in topo.stages]
        assert names == ["frontend", "search", "ads", "blend"]
        assert topo.stage("blend").predecessors == ("search", "ads")
        assert not topo.is_chain
        # One group per node, named after the node, replica counts kept.
        assert [g.name for s in topo.stages for g in s.groups] == names
        assert topo.n_components == 2 + 3 + 2 + 2

    def test_declaration_order_breaks_sort_ties(self, registry_guard):
        # ads is declared before blend but both become ready together;
        # swapping declaration order must swap the stage order.
        g = _graph()
        g["services"] = {
            k: g["services"][k]
            for k in ["frontend", "ads", "search", "blend"]
        }
        spec = scenario_from_callgraph(g, replace_existing=True)
        topo = spec.build_service(spec.runner_config()).topology
        assert [s.name for s in topo.stages] == [
            "frontend", "ads", "search", "blend",
        ]

    def test_scale_widens_replicas_not_shape(self, registry_guard):
        spec = scenario_from_callgraph(_graph())
        base = spec.build_service(spec.runner_config()).topology
        wide = spec.build_service(spec.runner_config(scale=2.0)).topology
        assert [s.name for s in wide.stages] == [s.name for s in base.stages]
        assert wide.n_components == 2 * base.n_components

    def test_classes_resolve_against_built_topology(self, registry_guard):
        spec = scenario_from_callgraph(_graph())
        assert spec.tags == ("callgraph", "dag", "classes")
        topo = spec.build_service(spec.runner_config()).topology
        mix = topo.resolve_classes(spec.request_classes)
        assert mix is not None and mix.names == ("organic", "monetised")
        ads_col = mix.group_names.index("ads")
        assert mix.group_participation[0][ads_col] == 0.0
        assert "classes:" in spec.describe()

    def test_multiple_entry_nodes_rejected(self, registry_guard):
        g = _graph(edges=[["frontend", "blend"], ["search", "blend"],
                          ["ads", "blend"]])
        with pytest.raises(ConfigurationError, match="exactly one entry"):
            scenario_from_callgraph(g)

    def test_full_cycle_rejected(self, registry_guard):
        g = _graph(edges=[["frontend", "search"], ["search", "ads"],
                          ["ads", "blend"], ["blend", "frontend"]])
        with pytest.raises(ConfigurationError, match="no entry"):
            scenario_from_callgraph(g)

    def test_descendant_cycle_rejected(self, registry_guard):
        g = _graph(edges=[["frontend", "search"], ["search", "ads"],
                          ["ads", "blend"], ["blend", "search"]])
        with pytest.raises(ConfigurationError, match="cycle"):
            scenario_from_callgraph(g)


class TestRegistration:
    def test_registers_by_default(self, registry_guard):
        scenario_from_callgraph(_graph())
        assert get_scenario("cg-test").tags[0] == "callgraph"

    def test_register_false_leaves_registry_alone(self):
        before = set(_REGISTRY)
        spec = scenario_from_callgraph(_graph(), register=False)
        assert spec.name == "cg-test"
        assert set(_REGISTRY) == before

    def test_duplicate_name_needs_replace_existing(self, registry_guard):
        scenario_from_callgraph(_graph())
        with pytest.raises(Exception, match="already registered"):
            scenario_from_callgraph(_graph())
        scenario_from_callgraph(_graph(), replace_existing=True)

    def test_imported_scenario_runs_end_to_end(self, registry_guard):
        from repro.baselines.policies import BasicPolicy
        from repro.sim.runner import ExperimentRunner

        spec = scenario_from_callgraph(_graph())
        cfg = spec.runner_config(
            arrival_rate=25.0, interval_s=6.0, n_intervals=2,
            warmup_intervals=1, seed=0, n_profiling_conditions=8,
        )
        result = ExperimentRunner(cfg).run(BasicPolicy())
        assert result.n_requests > 0
        assert set(result.per_class) == {"organic", "monetised"}
