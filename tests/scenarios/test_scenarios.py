"""Scenario registry, builders, and the name → spec → cache → summary
round-trip."""

import dataclasses

import pytest

from repro.baselines.policies import BasicPolicy
from repro.errors import ConfigurationError, ExperimentError
from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.sim.aggregate import SweepSummary
from repro.sim.runner import ExperimentRunner, RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepCache, SweepSpec


BUILTINS = (
    "branchy-api",
    "diamond-search",
    "fanout-feed",
    "mixed-frontend",
    "nutch-search",
    "pipeline-deep",
)

#: The two ways to drive a policy evaluation that must agree byte for
#: byte: the runner facade and an explicitly constructed control loop
#: on a virtual clock (the control-plane refactor's identity contract).
DRIVERS = ("runner", "control-loop")


def _drive(runner, policy, driver):
    """Run ``policy`` through the chosen driver."""
    if driver == "runner":
        return runner.run(policy)
    from repro.controlplane import ControlLoop, VirtualClock

    state = runner.setup(policy)
    return ControlLoop(
        runner, state, clock=VirtualClock(state.engine)
    ).run()


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(scenario_names())
        assert [s.name for s in all_scenarios()] == scenario_names()

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="nutch-search"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("nutch-search")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(dataclasses.replace(spec))
        # Shadowing is explicit — and restoring the original works too.
        register_scenario(dataclasses.replace(spec), replace_existing=True)
        assert get_scenario("nutch-search").name == "nutch-search"

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="", description="d", build=lambda c: None)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", description="d", build="not-callable")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x", description="d", build=lambda c: None,
                runner_defaults={"scenario": "y"},
            )


class TestRunnerConfigIntegration:
    def test_runner_config_applies_scenario_defaults_and_overrides(self):
        spec = get_scenario("fanout-feed")
        cfg = spec.runner_config(arrival_rate=55.0)
        assert cfg.scenario == "fanout-feed"
        assert cfg.n_nodes == spec.runner_defaults["n_nodes"]
        assert cfg.generator == spec.generator
        assert cfg.arrival_rate == 55.0
        # Caller overrides win over scenario defaults.
        assert spec.runner_config(n_nodes=3).n_nodes == 3

    def test_runner_rejects_unknown_scenario(self):
        cfg = RunnerConfig(scenario="nutch-search")
        assert ExperimentRunner(cfg).scenario.name == "nutch-search"
        with pytest.raises(ConfigurationError):
            ExperimentRunner(dataclasses.replace(cfg, scenario="bogus"))

    def test_config_validates_scenario_shape_fields(self):
        with pytest.raises(ExperimentError):
            RunnerConfig(scenario="")
        with pytest.raises(ExperimentError):
            RunnerConfig(scale=0.0)


class TestBuilders:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_build_is_deterministic(self, name):
        spec = get_scenario(name)
        cfg = spec.runner_config()
        a = spec.build_service(cfg)
        b = spec.build_service(cfg)
        assert [c.name for c in a.components] == [c.name for c in b.components]
        assert [c.cls for c in a.components] == [c.cls for c in b.components]
        assert a.name == name

    @pytest.mark.parametrize("name", BUILTINS)
    def test_classes_are_homogeneous(self, name):
        """§VI-D's one-campaign-per-class argument must hold: every
        component of a class shares one base distribution."""
        spec = get_scenario(name)
        service = spec.build_service(spec.runner_config())
        per_class = {}
        for comp in service.components:
            moments = (comp.base_service.mean, comp.base_service.scv)
            per_class.setdefault(comp.cls, set()).add(moments)
        assert all(len(v) == 1 for v in per_class.values()), per_class

    @pytest.mark.parametrize(
        "name",
        ["pipeline-deep", "fanout-feed", "diamond-search", "mixed-frontend"],
    )
    def test_scale_shrinks_shape(self, name):
        spec = get_scenario(name)
        full = spec.build_service(spec.runner_config())
        small = spec.build_service(spec.runner_config(scale=0.3))
        assert small.n_components < full.n_components
        assert small.topology.n_stages == full.topology.n_stages

    def test_nutch_ignores_scale(self):
        spec = get_scenario("nutch-search")
        a = spec.build_service(spec.runner_config())
        b = spec.build_service(spec.runner_config(scale=0.25))
        assert a.n_components == b.n_components

    @pytest.mark.parametrize("name", BUILTINS)
    def test_components_carry_demands(self, name):
        """Without resource footprints the scheduler has nothing to
        balance and interference has nothing to bite on."""
        spec = get_scenario(name)
        service = spec.build_service(spec.runner_config())
        assert all(c.demand.norm() > 0 for c in service.components)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_describe_mentions_name_and_size(self, name):
        line = get_scenario(name).describe()
        assert name in line and "components" in line


class TestEndToEndGolden:
    """Anchors: the nutch scenario reproduces the pre-scenario runner's
    exact metrics, and a non-Nutch scenario runs the full loop."""

    #: Captured from the PR 2 (pre-scenario, pre-kernel) tree with this
    #: exact config: (component p99, overall mean, requests, migrations).
    NUTCH_GOLDEN = (0.032696190254697687, 0.014752647216108854, 652, 0)

    def _config(self, **overrides):
        from repro.service.nutch import NutchConfig
        from repro.workloads.generator import GeneratorConfig

        kwargs = dict(
            n_nodes=6,
            arrival_rate=40.0,
            interval_s=8.0,
            n_intervals=3,
            warmup_intervals=1,
            seed=0,
            nutch=NutchConfig(
                n_search_groups=3, replicas_per_group=2,
                n_segmenters=1, n_aggregators=1,
            ),
            generator=GeneratorConfig(
                jobs_per_node_per_s=0.02, max_batch_jobs_per_node=3
            ),
            n_profiling_conditions=8,
        )
        kwargs.update(overrides)
        return RunnerConfig(**kwargs)

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_nutch_scenario_reproduces_pre_refactor_run(self, driver):
        result = _drive(
            ExperimentRunner(self._config()), BasicPolicy(), driver
        )
        got = (
            result.component_p99_s,
            result.overall_mean_s,
            result.n_requests,
            result.n_migrations,
        )
        assert got == self.NUTCH_GOLDEN

    def test_phases_compose_to_run(self):
        """setup / run_interval / collect driven by hand equals run()."""
        runner = ExperimentRunner(self._config())
        state = runner.setup(BasicPolicy())
        for interval in range(runner.config.n_intervals):
            runner.run_interval(state, interval)
        by_hand = runner.collect(state)
        assert (
            by_hand.metrics_dict()
            == ExperimentRunner(self._config()).run(BasicPolicy()).metrics_dict()
        )

    def test_collect_without_measured_intervals_fails_loudly(self):
        runner = ExperimentRunner(self._config())
        state = runner.setup(BasicPolicy())
        with pytest.raises(ExperimentError, match="no measured intervals"):
            runner.collect(state)


class TestChainGoldenMetrics:
    """The DAG refactor's bit-identity anchor: every *chain* scenario's
    full ``metrics_dict()`` is pinned to the values captured from the
    pre-DAG tree (PR 4 head) under exactly these configs."""

    #: Captured pre-refactor, scenario → full metrics_dict().
    GOLDEN = {
        "nutch-search": {
            "arrival_rate": 40.0,
            "component_latency": {
                "max": 0.02848187515636651, "mean": 0.0034055513014597093,
                "n": 3260, "p50": 0.0023974346230048287,
                "p95": 0.009484035222648037, "p99": 0.016676826590078464,
            },
            "n_migrations": 0,
            "n_requests": 652,
            "overall_latency": {
                "max": 0.03158492559686175, "mean": 0.01067995006166851,
                "n": 652, "p50": 0.009474671226809693,
                "p95": 0.01999988411894576, "p99": 0.025287876275378658,
            },
            "per_interval_component_p99": [
                0.01594612490513156, 0.017396587315645397,
            ],
            "per_interval_overall_mean": [
                0.010510761135038398, 0.01083906821885635,
            ],
            "policy_name": "Basic",
        },
        "pipeline-deep": {
            "arrival_rate": 40.0,
            "component_latency": {
                "max": 0.03823634661814249, "mean": 0.0030834398734233596,
                "n": 3460, "p50": 0.0021273934987361635,
                "p95": 0.0089867072888115, "p99": 0.014595674235166127,
            },
            "n_migrations": 0,
            "n_requests": 692,
            "overall_latency": {
                "max": 0.04261899032825607, "mean": 0.015417199367116797,
                "n": 692, "p50": 0.014656155798478624,
                "p95": 0.02581964883883832, "p99": 0.03262948639763774,
            },
            "per_interval_component_p99": [
                0.014585743150780654, 0.014595674235166127,
            ],
            "per_interval_overall_mean": [
                0.015442174913744812, 0.015392935374523766,
            ],
            "policy_name": "Basic",
        },
        "fanout-feed": {
            "arrival_rate": 40.0,
            "component_latency": {
                "max": 0.09530204407395518, "mean": 0.00427213382574739,
                "n": 4585, "p50": 0.0032480006049004093,
                "p95": 0.010450553393636817, "p99": 0.020405171464071094,
            },
            "n_migrations": 0,
            "n_requests": 655,
            "overall_latency": {
                "max": 0.10056904557127704, "mean": 0.015570744512858434,
                "n": 655, "p50": 0.013009434912588512,
                "p95": 0.03005345403681821, "p99": 0.06569784087416465,
            },
            "per_interval_component_p99": [
                0.021940572038812285, 0.018971918188083543,
            ],
            "per_interval_overall_mean": [
                0.01665182863472759, 0.014389496047429513,
            ],
            "policy_name": "Basic",
        },
    }

    SCALES = {"nutch-search": 1.0, "pipeline-deep": 0.5, "fanout-feed": 0.2}

    @pytest.mark.parametrize("driver", DRIVERS)
    @pytest.mark.parametrize(
        "scenario", ["nutch-search", "pipeline-deep", "fanout-feed"]
    )
    def test_chain_metrics_bit_identical(self, scenario, driver):
        from repro.service.nutch import NutchConfig

        spec = get_scenario(scenario)
        kwargs = dict(
            n_nodes=6, arrival_rate=40.0, interval_s=8.0, n_intervals=3,
            warmup_intervals=1, seed=0, n_profiling_conditions=8,
            scale=self.SCALES[scenario],
        )
        if scenario == "nutch-search":
            kwargs["nutch"] = NutchConfig(
                n_search_groups=3, replicas_per_group=2,
                n_segmenters=1, n_aggregators=1,
            )
        cfg = spec.runner_config(**kwargs)
        result = _drive(ExperimentRunner(cfg), BasicPolicy(), driver)
        assert result.metrics_dict() == self.GOLDEN[scenario]


class TestDagScenarios:
    """The DAG built-ins: shape, sizing rule, end-to-end viability."""

    def test_builders_are_dags(self):
        for name in ("diamond-search", "branchy-api"):
            spec = get_scenario(name)
            topo = spec.build_service(spec.runner_config()).topology
            assert not topo.is_chain
            assert topo.has_optional_groups
            # Both carry a genuine skip edge: the exit stage lists the
            # entry stage among its predecessors.
            exit_preds = topo.predecessor_indices[topo.exit_indices[0]]
            assert 0 in exit_preds and len(exit_preds) > 1

    def test_sizing_rule_pinned_to_built_shape(self):
        """The registered n_nodes defaults derive from the *actual*
        component count via suggested_n_nodes — a shape edit that
        forgets the preset breaks here."""
        from repro.scenarios import suggested_n_nodes
        from repro.scenarios.builtin import (
            BRANCHY_COMPONENTS,
            DIAMOND_COMPONENTS,
        )

        for name, declared in (
            ("diamond-search", DIAMOND_COMPONENTS),
            ("branchy-api", BRANCHY_COMPONENTS),
        ):
            spec = get_scenario(name)
            built = spec.build_service(spec.runner_config())
            assert built.n_components == declared
            assert spec.runner_defaults["n_nodes"] == suggested_n_nodes(
                declared
            )

    def test_suggested_n_nodes_rule(self):
        from repro.errors import ConfigurationError
        from repro.scenarios import suggested_n_nodes

        assert suggested_n_nodes(1) == 8  # the floor
        assert suggested_n_nodes(30) == 10
        assert suggested_n_nodes(31) == 11
        with pytest.raises(ConfigurationError):
            suggested_n_nodes(0)

    def test_describe_shows_dag_shape(self):
        line = get_scenario("diamond-search").describe()
        assert "<-" in line and "opt" in line

    @pytest.mark.parametrize("name", ["diamond-search", "branchy-api"])
    def test_runs_end_to_end_with_pcs(self, name):
        from repro.experiments.fig6 import paper_pcs_policy

        spec = get_scenario(name)
        cfg = spec.runner_config(
            n_nodes=8, arrival_rate=40.0, interval_s=8.0, n_intervals=3,
            warmup_intervals=1, seed=0, n_profiling_conditions=8, scale=0.5,
        )
        result = ExperimentRunner(cfg).run(paper_pcs_policy())
        assert result.n_requests > 0
        assert result.component_p99_s > 0

    @pytest.mark.parametrize("name", ["diamond-search", "branchy-api"])
    def test_deterministic_across_runs(self, name):
        """Optional-group Bernoulli draws come from the seeded request
        stream: two runs of one config agree exactly."""
        spec = get_scenario(name)
        cfg = spec.runner_config(
            n_nodes=8, arrival_rate=30.0, interval_s=8.0, n_intervals=3,
            warmup_intervals=1, seed=1, n_profiling_conditions=8, scale=0.5,
        )
        a = ExperimentRunner(cfg).run(BasicPolicy())
        b = ExperimentRunner(cfg).run(BasicPolicy())
        assert a.metrics_dict() == b.metrics_dict()


class TestMixedFrontendScenario:
    """The classed built-in: shape pin, class declarations, catalog."""

    def test_sizing_rule_pinned_to_built_shape(self):
        from repro.scenarios import suggested_n_nodes
        from repro.scenarios.builtin import MIXED_FRONTEND_COMPONENTS

        spec = get_scenario("mixed-frontend")
        built = spec.build_service(spec.runner_config())
        assert built.n_components == MIXED_FRONTEND_COMPONENTS
        assert spec.runner_defaults["n_nodes"] == suggested_n_nodes(
            MIXED_FRONTEND_COMPONENTS
        )

    def test_declared_classes_restrict_the_dag(self):
        spec = get_scenario("mixed-frontend")
        topo = spec.build_service(spec.runner_config()).topology
        mix = topo.resolve_classes(spec.request_classes)
        assert mix is not None
        assert mix.names == ("search", "autocomplete", "image-heavy")
        col = {g: i for i, g in enumerate(mix.group_names)}
        # Autocomplete keystrokes visit only gateway -> suggest -> blend.
        auto = mix.group_participation[1]
        assert all(auto[col[f"search-g{g:02d}"]] == 0.0 for g in range(4))
        assert auto[col["image-g0"]] == 0.0
        assert auto[col["suggest-g0"]] == 1.0
        # Image-heavy queries make the optional image lookup mandatory.
        assert mix.group_participation[2][col["image-g0"]] == 1.0
        # Every class keeps >= 1 mandatory branch into blend, so
        # class-skipped stages can pass through without a skip edge.
        assert (mix.stage_participation.max(axis=1) == 1.0).all()

    def test_class_group_names_stable_under_scale(self):
        """Class participation bakes group names into the frozen spec:
        scale may widen replica counts but must never rename or
        renumber the groups the declarations address."""
        spec = get_scenario("mixed-frontend")
        for scale in (0.5, 1.0, 2.0):
            topo = spec.build_service(spec.runner_config(scale=scale)).topology
            assert topo.resolve_classes(spec.request_classes) is not None

    def test_describe_shows_class_table(self):
        line = get_scenario("mixed-frontend").describe()
        assert "classes:" in line
        assert "autocomplete(w=0.30, x0.5)" in line
        assert "image-heavy(w=0.10, x1.6)" in line


class TestSweepRoundTrip:
    """Scenario name → spec → sweep cache manifest → rebuilt summary."""

    def _spec(self, scenario: str) -> SweepSpec:
        s = get_scenario(scenario)
        return SweepSpec(
            base=s.runner_config(
                n_nodes=6,
                arrival_rate=30.0,
                interval_s=8.0,
                n_intervals=3,
                warmup_intervals=1,
                seed=0,
                scale=0.4,
            ),
            policies=(BasicPolicy(),),
            arrival_rates=(30.0,),
            seeds=(0, 1),
        )

    @pytest.mark.parametrize(
        "scenario", ["pipeline-deep", "fanout-feed", "diamond-search"]
    )
    def test_cache_round_trip(self, scenario, tmp_path):
        spec = self._spec(scenario)
        assert spec.scenario == scenario
        cache = SweepCache(tmp_path)
        result = ParallelSweepRunner(spec, workers=1, cache=cache).run()

        manifest = cache.manifest()
        assert manifest["spec"]["scenario"] == scenario
        assert manifest["spec"]["base"]["scenario"] == scenario

        rebuilt = SweepSummary.from_cache(cache)
        assert rebuilt.to_dict() == result.summary().to_dict()

    def test_scenarios_get_distinct_cache_keys(self, tmp_path):
        """Two scenarios over otherwise identical knobs must never
        collide in a shared cache directory."""
        from repro.sim.sweep import point_cache_key

        a = self._spec("pipeline-deep")
        b = self._spec("fanout-feed")
        pa, pb = a.points()[0], b.points()[0]
        assert point_cache_key(a.runner_config(pa), pa.policy) != point_cache_key(
            b.runner_config(pb), pb.policy
        )
