"""Scenario registry, builders, and the name → spec → cache → summary
round-trip."""

import dataclasses

import pytest

from repro.baselines.policies import BasicPolicy
from repro.errors import ConfigurationError, ExperimentError
from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.sim.aggregate import SweepSummary
from repro.sim.runner import ExperimentRunner, RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepCache, SweepSpec


BUILTINS = ("fanout-feed", "nutch-search", "pipeline-deep")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTINS) <= set(scenario_names())
        assert [s.name for s in all_scenarios()] == scenario_names()

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(ConfigurationError, match="nutch-search"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("nutch-search")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(dataclasses.replace(spec))
        # Shadowing is explicit — and restoring the original works too.
        register_scenario(dataclasses.replace(spec), replace_existing=True)
        assert get_scenario("nutch-search").name == "nutch-search"

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="", description="d", build=lambda c: None)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", description="d", build="not-callable")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x", description="d", build=lambda c: None,
                runner_defaults={"scenario": "y"},
            )


class TestRunnerConfigIntegration:
    def test_runner_config_applies_scenario_defaults_and_overrides(self):
        spec = get_scenario("fanout-feed")
        cfg = spec.runner_config(arrival_rate=55.0)
        assert cfg.scenario == "fanout-feed"
        assert cfg.n_nodes == spec.runner_defaults["n_nodes"]
        assert cfg.generator == spec.generator
        assert cfg.arrival_rate == 55.0
        # Caller overrides win over scenario defaults.
        assert spec.runner_config(n_nodes=3).n_nodes == 3

    def test_runner_rejects_unknown_scenario(self):
        cfg = RunnerConfig(scenario="nutch-search")
        assert ExperimentRunner(cfg).scenario.name == "nutch-search"
        with pytest.raises(ConfigurationError):
            ExperimentRunner(dataclasses.replace(cfg, scenario="bogus"))

    def test_config_validates_scenario_shape_fields(self):
        with pytest.raises(ExperimentError):
            RunnerConfig(scenario="")
        with pytest.raises(ExperimentError):
            RunnerConfig(scale=0.0)


class TestBuilders:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_build_is_deterministic(self, name):
        spec = get_scenario(name)
        cfg = spec.runner_config()
        a = spec.build_service(cfg)
        b = spec.build_service(cfg)
        assert [c.name for c in a.components] == [c.name for c in b.components]
        assert [c.cls for c in a.components] == [c.cls for c in b.components]
        assert a.name == name

    @pytest.mark.parametrize("name", BUILTINS)
    def test_classes_are_homogeneous(self, name):
        """§VI-D's one-campaign-per-class argument must hold: every
        component of a class shares one base distribution."""
        spec = get_scenario(name)
        service = spec.build_service(spec.runner_config())
        per_class = {}
        for comp in service.components:
            moments = (comp.base_service.mean, comp.base_service.scv)
            per_class.setdefault(comp.cls, set()).add(moments)
        assert all(len(v) == 1 for v in per_class.values()), per_class

    @pytest.mark.parametrize("name", ["pipeline-deep", "fanout-feed"])
    def test_scale_shrinks_shape(self, name):
        spec = get_scenario(name)
        full = spec.build_service(spec.runner_config())
        small = spec.build_service(spec.runner_config(scale=0.3))
        assert small.n_components < full.n_components
        assert small.topology.n_stages == full.topology.n_stages

    def test_nutch_ignores_scale(self):
        spec = get_scenario("nutch-search")
        a = spec.build_service(spec.runner_config())
        b = spec.build_service(spec.runner_config(scale=0.25))
        assert a.n_components == b.n_components

    @pytest.mark.parametrize("name", BUILTINS)
    def test_components_carry_demands(self, name):
        """Without resource footprints the scheduler has nothing to
        balance and interference has nothing to bite on."""
        spec = get_scenario(name)
        service = spec.build_service(spec.runner_config())
        assert all(c.demand.norm() > 0 for c in service.components)

    @pytest.mark.parametrize("name", BUILTINS)
    def test_describe_mentions_name_and_size(self, name):
        line = get_scenario(name).describe()
        assert name in line and "components" in line


class TestEndToEndGolden:
    """Anchors: the nutch scenario reproduces the pre-scenario runner's
    exact metrics, and a non-Nutch scenario runs the full loop."""

    #: Captured from the PR 2 (pre-scenario, pre-kernel) tree with this
    #: exact config: (component p99, overall mean, requests, migrations).
    NUTCH_GOLDEN = (0.032696190254697687, 0.014752647216108854, 652, 0)

    def _config(self, **overrides):
        from repro.service.nutch import NutchConfig
        from repro.workloads.generator import GeneratorConfig

        kwargs = dict(
            n_nodes=6,
            arrival_rate=40.0,
            interval_s=8.0,
            n_intervals=3,
            warmup_intervals=1,
            seed=0,
            nutch=NutchConfig(
                n_search_groups=3, replicas_per_group=2,
                n_segmenters=1, n_aggregators=1,
            ),
            generator=GeneratorConfig(
                jobs_per_node_per_s=0.02, max_batch_jobs_per_node=3
            ),
            n_profiling_conditions=8,
        )
        kwargs.update(overrides)
        return RunnerConfig(**kwargs)

    def test_nutch_scenario_reproduces_pre_refactor_run(self):
        result = ExperimentRunner(self._config()).run(BasicPolicy())
        got = (
            result.component_p99_s,
            result.overall_mean_s,
            result.n_requests,
            result.n_migrations,
        )
        assert got == self.NUTCH_GOLDEN

    def test_phases_compose_to_run(self):
        """setup / run_interval / collect driven by hand equals run()."""
        runner = ExperimentRunner(self._config())
        state = runner.setup(BasicPolicy())
        for interval in range(runner.config.n_intervals):
            runner.run_interval(state, interval)
        by_hand = runner.collect(state)
        assert (
            by_hand.metrics_dict()
            == ExperimentRunner(self._config()).run(BasicPolicy()).metrics_dict()
        )

    def test_collect_without_measured_intervals_fails_loudly(self):
        runner = ExperimentRunner(self._config())
        state = runner.setup(BasicPolicy())
        with pytest.raises(ExperimentError, match="no measured intervals"):
            runner.collect(state)


class TestSweepRoundTrip:
    """Scenario name → spec → sweep cache manifest → rebuilt summary."""

    def _spec(self, scenario: str) -> SweepSpec:
        s = get_scenario(scenario)
        return SweepSpec(
            base=s.runner_config(
                n_nodes=6,
                arrival_rate=30.0,
                interval_s=8.0,
                n_intervals=3,
                warmup_intervals=1,
                seed=0,
                scale=0.4,
            ),
            policies=(BasicPolicy(),),
            arrival_rates=(30.0,),
            seeds=(0, 1),
        )

    @pytest.mark.parametrize("scenario", ["pipeline-deep", "fanout-feed"])
    def test_cache_round_trip(self, scenario, tmp_path):
        spec = self._spec(scenario)
        assert spec.scenario == scenario
        cache = SweepCache(tmp_path)
        result = ParallelSweepRunner(spec, workers=1, cache=cache).run()

        manifest = cache.manifest()
        assert manifest["spec"]["scenario"] == scenario
        assert manifest["spec"]["base"]["scenario"] == scenario

        rebuilt = SweepSummary.from_cache(cache)
        assert rebuilt.to_dict() == result.summary().to_dict()

    def test_scenarios_get_distinct_cache_keys(self, tmp_path):
        """Two scenarios over otherwise identical knobs must never
        collide in a shared cache directory."""
        from repro.sim.sweep import point_cache_key

        a = self._spec("pipeline-deep")
        b = self._spec("fanout-feed")
        pa, pb = a.points()[0], b.points()[0]
        assert point_cache_key(a.runner_config(pa), pa.policy) != point_cache_key(
            b.runner_config(pb), pb.policy
        )
