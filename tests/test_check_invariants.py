"""The static invariant checker (`scripts/check_invariants.py`) is
itself a tier-1 gate, so it gets a self-test: clean on the real tree,
loud (file:line, exit 1) on synthetic violations."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_invariants.py"


def _run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, timeout=120,
    )


def test_real_tree_is_clean():
    proc = _run()
    assert proc.returncode == 0, proc.stderr
    assert "check_invariants: OK" in proc.stdout


def test_violations_reported_with_file_and_line(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n"
        "q = np.percentile(x, 99)\n"
        "rng = np.random.default_rng()\n"
    )
    proc = _run(str(tmp_path))
    assert proc.returncode == 1
    assert f"{bad}:2:" in proc.stderr  # raw percentile
    assert f"{bad}:3:" in proc.stderr  # unseeded generator
    assert "2 violation(s)" in proc.stderr


@pytest.mark.parametrize(
    "line, fragment",
    [
        ("np.random.seed(4)\n", "np.random.seed"),
        ("r = RandomState(0)\n", "RandomState"),
        ("x = np.random.uniform(0, 1)\n", "legacy np.random"),
        ("import random\n", "stdlib random"),
        ("seed = int(time.time())\n", "wall-clock"),
    ],
)
def test_each_seeding_ban_fires(tmp_path, line, fragment):
    (tmp_path / "mod.py").write_text(line)
    proc = _run(str(tmp_path))
    assert proc.returncode == 1
    assert fragment in proc.stderr


def test_commented_out_calls_are_ignored(tmp_path):
    (tmp_path / "ok.py").write_text(
        "# q = np.percentile(x, 99)\n"
        "y = 1  # np.random.seed(0) would be wrong here\n"
    )
    proc = _run(str(tmp_path))
    assert proc.returncode == 0


def test_seeded_generators_pass(tmp_path):
    (tmp_path / "ok.py").write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng(1234)\n"
    )
    assert _run(str(tmp_path)).returncode == 0


def test_missing_tree_exits_2(tmp_path):
    proc = _run(str(tmp_path / "nope"))
    assert proc.returncode == 2
