"""Tests for latency predictors and the training pipeline."""

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import ModelError
from repro.interference.ground_truth import default_interference_model
from repro.model.combined import CombinedServiceTimeModel
from repro.model.predictor import OraclePredictor, TrainedPredictor
from repro.model.training import (
    TrainingSet,
    error_buckets,
    mean_absolute_percentage_error,
    train_combined_model,
)
from repro.service.component import Component, ComponentClass
from repro.simcore.distributions import LogNormal
from repro.units import ms


def _searching_component():
    return Component(
        name="search-rep",
        cls=ComponentClass.SEARCHING,
        base_service=LogNormal(ms(6), 0.8),
    )


def _fitted_model(rng, n=400):
    intensity = rng.uniform(0, 1, n)
    u = np.column_stack(
        [0.8 * intensity, 25 * intensity, 180 * intensity, 60 * intensity]
    )
    x = ms(6) * (1 + 0.7 * intensity)
    return CombinedServiceTimeModel().fit(u, x)


class TestTrainedPredictor:
    def test_latency_combines_eq1_and_eq2(self):
        rng = np.random.default_rng(0)
        model = _fitted_model(rng)
        pred = TrainedPredictor(
            {ComponentClass.SEARCHING: model}, {ComponentClass.SEARCHING: 0.8}
        )
        u = np.array([[0.4, 12.5, 90.0, 30.0]])
        mean = pred.predict_mean_service(ComponentClass.SEARCHING, u)[0]
        lat = pred.predict_latency(ComponentClass.SEARCHING, u, 50.0)[0]
        from repro.model.queueing import mg1_latency

        assert lat == pytest.approx(mg1_latency(mean, 0.8, 50.0))

    def test_unfitted_model_rejected(self):
        with pytest.raises(ModelError):
            TrainedPredictor(
                {ComponentClass.SEARCHING: CombinedServiceTimeModel()},
                {ComponentClass.SEARCHING: 1.0},
            )

    def test_missing_scv_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            TrainedPredictor({ComponentClass.SEARCHING: _fitted_model(rng)}, {})

    def test_unknown_class_rejected(self):
        rng = np.random.default_rng(0)
        pred = TrainedPredictor(
            {ComponentClass.SEARCHING: _fitted_model(rng)},
            {ComponentClass.SEARCHING: 1.0},
        )
        with pytest.raises(ModelError):
            pred.predict_mean_service(ComponentClass.SEGMENTING, np.zeros((1, 4)))

    def test_empty_models_rejected(self):
        with pytest.raises(ModelError):
            TrainedPredictor({}, {})

    def test_negative_scv_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            TrainedPredictor(
                {ComponentClass.SEARCHING: _fitted_model(rng)},
                {ComponentClass.SEARCHING: -1.0},
            )


class TestOraclePredictor:
    def test_matches_ground_truth_exactly(self):
        interference = default_interference_model(noise_sigma=0.0)
        comp = _searching_component()
        oracle = OraclePredictor(interference, {ComponentClass.SEARCHING: comp})
        u = ResourceVector(core=0.5, cache_mpki=20.0, disk_bw=100.0, net_bw=30.0)
        mean = oracle.predict_mean_service(
            ComponentClass.SEARCHING, u.as_array()[None, :]
        )[0]
        assert mean == pytest.approx(interference.mean_service_time(comp, u))

    def test_scv_is_base_scv(self):
        oracle = OraclePredictor(
            default_interference_model(0.0),
            {ComponentClass.SEARCHING: _searching_component()},
        )
        assert oracle.scv(ComponentClass.SEARCHING) == pytest.approx(0.8)

    def test_missing_representative_rejected(self):
        oracle = OraclePredictor(
            default_interference_model(0.0),
            {ComponentClass.SEARCHING: _searching_component()},
        )
        with pytest.raises(ModelError):
            oracle.predict_mean_service(ComponentClass.AGGREGATING, np.zeros((1, 4)))

    def test_empty_representatives_rejected(self):
        with pytest.raises(ModelError):
            OraclePredictor(default_interference_model(0.0), {})


class TestTrainingSet:
    def test_add_and_arrays(self):
        ts = TrainingSet()
        ts.add(ResourceVector(core=0.5), ms(6))
        ts.add(ResourceVector(core=0.7), ms(8))
        assert len(ts) == 2
        assert ts.contention.shape == (2, 4)
        np.testing.assert_allclose(ts.service_times, [ms(6), ms(8)])

    def test_scv(self):
        ts = TrainingSet()
        for x in (1.0, 2.0, 3.0):
            ts.add(ResourceVector(), x)
        expected = np.var([1.0, 2.0, 3.0]) / 4.0
        assert ts.scv == pytest.approx(expected)

    def test_nonpositive_time_rejected(self):
        with pytest.raises(ModelError):
            TrainingSet().add(ResourceVector(), 0.0)

    def test_empty_access_rejected(self):
        ts = TrainingSet()
        with pytest.raises(ModelError):
            ts.contention
        with pytest.raises(ModelError):
            ts.service_times

    def test_split_partitions(self):
        rng = np.random.default_rng(1)
        ts = TrainingSet()
        for i in range(100):
            ts.add(ResourceVector(core=i / 100), ms(5) + i * 1e-5)
        train, test = ts.split(0.8, rng)
        assert len(train) == 80 and len(test) == 20

    def test_split_bounds(self):
        rng = np.random.default_rng(1)
        ts = TrainingSet()
        ts.add(ResourceVector(), 1.0)
        with pytest.raises(ModelError):
            ts.split(0.5, rng)
        ts.add(ResourceVector(), 2.0)
        with pytest.raises(ModelError):
            ts.split(1.5, rng)

    def test_train_combined_model(self):
        rng = np.random.default_rng(3)
        ts = TrainingSet()
        for _ in range(200):
            z = rng.uniform(0, 1)
            ts.add(
                ResourceVector(core=0.8 * z, cache_mpki=20 * z, disk_bw=100 * z),
                ms(6) * (1 + 0.5 * z),
            )
        model, scv = train_combined_model(ts)
        assert model.is_fitted
        assert scv == pytest.approx(ts.scv)


class TestErrorMetrics:
    def test_mape(self):
        assert mean_absolute_percentage_error(
            [1.1, 0.9], [1.0, 1.0]
        ) == pytest.approx(10.0)

    def test_mape_validation(self):
        with pytest.raises(ModelError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])
        with pytest.raises(ModelError):
            mean_absolute_percentage_error([1.0], [0.0])

    def test_buckets_match_paper_convention(self):
        errors = [1.0, 2.0, 4.0, 6.0, 9.0]
        buckets = error_buckets(errors)
        assert buckets[3.0] == pytest.approx(0.4)
        assert buckets[5.0] == pytest.approx(0.6)
        assert buckets[8.0] == pytest.approx(0.8)

    def test_buckets_validation(self):
        with pytest.raises(ModelError):
            error_buckets([])
        with pytest.raises(ModelError):
            error_buckets([-1.0])
