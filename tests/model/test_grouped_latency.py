"""Tests for the grouped Eqs. 3–4 generalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.service_latency import grouped_overall_latency, overall_latency


class TestGroupedOverallLatency:
    def test_one_component_per_group_is_paper_formula(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            m = int(rng.integers(1, 30))
            stage_of = np.sort(rng.integers(0, 4, m))
            lat = rng.uniform(0.001, 0.1, m)
            assert grouped_overall_latency(
                lat, np.arange(m), stage_of
            ) == pytest.approx(overall_latency(lat, stage_of))

    def test_group_mean_semantics(self):
        # One stage, two groups of two replicas.
        lat = np.array([10.0, 30.0, 5.0, 7.0])
        group_of = np.array([0, 0, 1, 1])
        stage_of = np.zeros(4, dtype=int)
        # Group means: 20 and 6 -> stage max = 20.
        assert grouped_overall_latency(lat, group_of, stage_of) == pytest.approx(20.0)

    def test_sum_over_stages(self):
        lat = np.array([4.0, 6.0, 10.0, 20.0])
        group_of = np.array([0, 0, 1, 1])
        stage_of = np.array([0, 0, 1, 1])
        assert grouped_overall_latency(lat, group_of, stage_of) == pytest.approx(
            5.0 + 15.0
        )

    @given(
        lat=st.lists(st.floats(min_value=0, max_value=1), min_size=4, max_size=4)
    )
    @settings(max_examples=50, deadline=None)
    def test_grouping_never_exceeds_plain_max(self, lat):
        # Averaging replicas can only lower a stage's latency vs max.
        lat = np.array(lat)
        group_of = np.array([0, 0, 1, 1])
        stage_of = np.zeros(4, dtype=int)
        assert (
            grouped_overall_latency(lat, group_of, stage_of)
            <= overall_latency(lat, stage_of) + 1e-12
        )

    def test_straggler_dilution_by_replica_count(self):
        # A straggler in a group of 5 counts for one fifth.
        lat = np.array([100.0, 10.0, 10.0, 10.0, 10.0])
        group_of = np.zeros(5, dtype=int)
        stage_of = np.zeros(5, dtype=int)
        assert grouped_overall_latency(lat, group_of, stage_of) == pytest.approx(28.0)

    def test_misaligned_shapes_rejected(self):
        with pytest.raises(ModelError):
            grouped_overall_latency(
                np.ones(3), np.zeros(3, dtype=int), np.zeros(4, dtype=int)
            )


class TestMatrixGroupedConsistency:
    def test_matrix_overall_matches_helper(self):
        from repro.model.matrix import MatrixInputs, PerformanceMatrix
        from repro.model.predictor import LatencyPredictor
        from repro.service.component import ComponentClass

        class Stub(LatencyPredictor):
            rho_max = 0.98

            def predict_mean_service(self, cls, contention):
                u = np.atleast_2d(contention)
                return 0.005 * (1.0 + u.sum(axis=1) / 100.0)

            def scv(self, cls):
                return 1.0

        rng = np.random.default_rng(1)
        m, k = 8, 3
        group_of = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        stage_of = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        demands = rng.uniform(0, 0.2, (m, 4))
        assignment = rng.integers(0, k, m)
        node_totals = np.zeros((k, 4))
        for i in range(m):
            node_totals[assignment[i]] += demands[i]
        inputs = MatrixInputs(
            stage_of, [ComponentClass.GENERIC] * m, demands, assignment,
            node_totals, np.full(m, 10.0), group_of=group_of,
        )
        pm = PerformanceMatrix(inputs, Stub())
        assert pm.current_overall == pytest.approx(
            grouped_overall_latency(pm.current_latencies, group_of, stage_of)
        )

    def test_grouped_fast_equals_reference(self):
        from repro.model.matrix import MatrixInputs, PerformanceMatrix
        from repro.model.predictor import LatencyPredictor
        from repro.service.component import ComponentClass

        class Stub(LatencyPredictor):
            rho_max = 0.98

            def predict_mean_service(self, cls, contention):
                u = np.atleast_2d(contention)
                return 0.005 * (1.0 + u @ np.array([0.5, 0.01, 0.002, 0.004]))

            def scv(self, cls):
                return 1.0

        rng = np.random.default_rng(3)
        m, k = 12, 4
        group_of = np.repeat(np.arange(6), 2)
        stage_of = np.repeat([0, 1, 2], 4)
        demands = rng.uniform(0, 0.3, (m, 4)) * np.array([1.0, 10.0, 40.0, 15.0])
        assignment = rng.integers(0, k, m)
        node_totals = np.zeros((k, 4))
        for i in range(m):
            node_totals[assignment[i]] += demands[i]
        node_totals += rng.uniform(0, 0.5, (k, 4)) * np.array([1.0, 20.0, 80.0, 30.0])

        def inputs():
            return MatrixInputs(
                stage_of.copy(), [ComponentClass.GENERIC] * m, demands.copy(),
                assignment.copy(), node_totals.copy(), np.full(m, 15.0),
                group_of=group_of.copy(),
            )

        fast = PerformanceMatrix(inputs(), Stub()).build("fast")
        ref = PerformanceMatrix(inputs(), Stub()).build("reference")
        np.testing.assert_allclose(fast.L, ref.L, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(fast.R, ref.R, rtol=1e-10, atol=1e-12)

    def test_group_spanning_stages_rejected(self):
        from repro.model.matrix import MatrixInputs
        from repro.service.component import ComponentClass

        with pytest.raises(ModelError):
            MatrixInputs(
                stage_of=np.array([0, 1]),
                classes=[ComponentClass.GENERIC] * 2,
                demands=np.zeros((2, 4)),
                assignment=np.zeros(2, dtype=int),
                node_totals=np.ones((2, 4)),
                arrival_rates=np.ones(2),
                group_of=np.array([0, 0]),  # spans stages 0 and 1
            )


class TestGroupedStageLatencies:
    """The per-stage extraction the DAG-composing crossover predictor
    consumes (``grouped_stage_latencies``)."""

    def test_per_stage_vector_matches_the_sum(self):
        from repro.model.service_latency import grouped_stage_latencies

        rng = np.random.default_rng(3)
        m = 12
        stage_of = np.sort(rng.integers(0, 3, m))
        group_of = np.sort(rng.integers(0, 6, m))
        # group ids must be non-decreasing within the stage-major order
        # and refine stages; sorting both keeps that true here because
        # groups never span stages in this construction.
        order = np.lexsort((group_of, stage_of))
        stage_of, group_of = stage_of[order], group_of[order]
        # Re-label groups so (stage, group) pairs are globally sorted.
        pairs = stage_of * 100 + group_of
        group_of = np.unique(pairs, return_inverse=True)[1]
        lat = rng.uniform(0.001, 0.1, m)
        per_stage = grouped_stage_latencies(lat, group_of, stage_of)
        assert float(per_stage.sum()) == pytest.approx(
            grouped_overall_latency(lat, group_of, stage_of)
        )

    def test_group_mean_then_stage_max(self):
        from repro.model.service_latency import grouped_stage_latencies

        lat = np.array([10.0, 30.0, 5.0, 7.0, 2.0])
        group_of = np.array([0, 0, 1, 1, 2])
        stage_of = np.array([0, 0, 0, 0, 1])
        per_stage = grouped_stage_latencies(lat, group_of, stage_of)
        assert per_stage.tolist() == [20.0, 2.0]

    def test_dag_composition_equals_chain_on_a_chain(self):
        from repro.model.service_latency import (
            dag_overall_latency,
            grouped_stage_latencies,
        )

        lat = np.array([4.0, 6.0, 1.0, 3.0, 9.0])
        group_of = np.array([0, 0, 1, 1, 2])
        stage_of = np.array([0, 0, 1, 1, 2])
        per_stage = grouped_stage_latencies(lat, group_of, stage_of)
        chain = [(s - 1,) if s else () for s in range(3)]
        assert dag_overall_latency(per_stage, chain) == pytest.approx(
            grouped_overall_latency(lat, group_of, stage_of)
        )

    def test_misaligned_shapes_rejected(self):
        from repro.model.service_latency import grouped_stage_latencies

        with pytest.raises(ModelError):
            grouped_stage_latencies(
                np.ones(3), np.zeros(3, int), np.zeros(2, int)
            )
