"""Tests for the performance matrix (Eq. 5 + Table III).

The central property: the vectorised fast build equals the literal
reference build, elementwise, on randomised instances.
"""

import numpy as np
import pytest

from repro.errors import ModelError, SchedulingError
from repro.model.matrix import MatrixInputs, PerformanceMatrix
from repro.model.predictor import LatencyPredictor
from repro.service.component import ComponentClass


class StubPredictor(LatencyPredictor):
    """Deterministic affine service-time model for matrix tests."""

    rho_max = 0.98

    def __init__(self, base=0.006, scv=1.0):
        self.base = base
        self._scv = scv
        self.coef = np.array([0.5, 0.01, 0.002, 0.004])

    def predict_mean_service(self, cls, contention):
        u = np.atleast_2d(np.asarray(contention, dtype=np.float64))
        return self.base * (1.0 + u @ self.coef)

    def scv(self, cls):
        return self._scv


def _random_inputs(rng, m=12, k=4, n_stages=3):
    stage_of = np.sort(rng.integers(0, n_stages, m))
    classes = [ComponentClass.GENERIC] * m
    demands = rng.uniform(0, 0.3, (m, 4)) * np.array([1.0, 10.0, 40.0, 15.0])
    assignment = rng.integers(0, k, m)
    # Node totals must include at least the components' own demands.
    node_totals = np.zeros((k, 4))
    for i in range(m):
        node_totals[assignment[i]] += demands[i]
    node_totals += rng.uniform(0, 0.5, (k, 4)) * np.array([1.0, 20.0, 80.0, 30.0])
    arrival_rates = rng.uniform(5.0, 40.0, m)
    return MatrixInputs(
        stage_of=stage_of,
        classes=classes,
        demands=demands,
        assignment=assignment,
        node_totals=node_totals,
        arrival_rates=arrival_rates,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


class TestFastEqualsReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        inputs = _random_inputs(rng, m=10 + seed, k=3 + seed % 3)
        pred = StubPredictor()
        fast = PerformanceMatrix(inputs.copy(), pred).build("fast")
        ref = PerformanceMatrix(inputs.copy(), pred).build("reference")
        np.testing.assert_allclose(fast.L, ref.L, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(fast.R, ref.R, rtol=1e-10, atol=1e-12)

    def test_larger_instance(self, rng):
        inputs = _random_inputs(rng, m=40, k=8, n_stages=4)
        pred = StubPredictor()
        fast = PerformanceMatrix(inputs.copy(), pred).build("fast")
        ref = PerformanceMatrix(inputs.copy(), pred).build("reference")
        np.testing.assert_allclose(fast.L, ref.L, rtol=1e-10, atol=1e-12)

    def test_unknown_method_rejected(self, rng):
        inputs = _random_inputs(rng)
        with pytest.raises(ModelError):
            PerformanceMatrix(inputs, StubPredictor()).build("magic")


class TestEntrySemantics:
    def _two_node_setup(self, heavy_on_0=True):
        """One component on a contended node, an idle node next door."""
        stage_of = np.array([0])
        classes = [ComponentClass.GENERIC]
        demands = np.array([[0.1, 1.0, 2.0, 1.0]])
        assignment = np.array([0])
        node_totals = np.array(
            [
                [0.9, 30.0, 150.0, 50.0],  # node 0: heavy batch load
                [0.1, 1.0, 2.0, 1.0],  # node 1: idle
            ]
        )
        if not heavy_on_0:
            node_totals = node_totals[::-1].copy()
        node_totals[0 if heavy_on_0 else 1] += demands[0]
        arrival = np.array([20.0])
        return MatrixInputs(
            stage_of, classes, demands, assignment, node_totals, arrival
        )

    def test_migration_to_idle_node_positive(self):
        inputs = self._two_node_setup()
        pm = PerformanceMatrix(inputs, StubPredictor())
        l_gain, r_gain = pm.entry(0, 1)
        assert l_gain > 0
        assert r_gain > 0

    def test_diagonal_zero(self):
        inputs = self._two_node_setup()
        pm = PerformanceMatrix(inputs, StubPredictor())
        assert pm.entry(0, 0) == (0.0, 0.0)

    def test_out_of_range_rejected(self):
        pm = PerformanceMatrix(self._two_node_setup(), StubPredictor())
        with pytest.raises(ModelError):
            pm.entry(5, 0)
        with pytest.raises(ModelError):
            pm.entry(0, 9)

    def test_migration_to_heavier_node_negative(self):
        inputs = self._two_node_setup(heavy_on_0=False)
        # Component sits on the idle node; moving to the heavy one hurts.
        inputs.assignment[:] = 0
        pm = PerformanceMatrix(inputs, StubPredictor())
        l_gain, r_gain = pm.entry(0, 1)
        assert l_gain < 0
        assert r_gain < 0


class TestTableIIIDirections:
    """Paper's four qualitative claims (i)-(iv) after §IV-C."""

    def _inputs(self):
        rng = np.random.default_rng(5)
        return _random_inputs(rng, m=10, k=3)

    def test_origin_components_speed_up_target_slow_down(self):
        inputs = self._inputs()
        pred = StubPredictor()
        pm = PerformanceMatrix(inputs, pred)
        i = 0
        origin = int(inputs.assignment[i])
        target = (origin + 1) % inputs.k
        base = pm.current_latencies
        # Recompute latencies after the hypothetical migration by hand.
        u_new = pm._contention_now().copy()
        u_new[i] = inputs.node_totals[target]
        d = inputs.demands[i]
        for c in range(inputs.m):
            if c == i:
                continue
            if inputs.assignment[c] == origin:
                u_new[c] = np.maximum(u_new[c] - d, 0.0)
            elif inputs.assignment[c] == target:
                u_new[c] = u_new[c] + d
        l_new = pm._latencies_full(u_new)
        for c in range(inputs.m):
            if c == i:
                continue
            if inputs.assignment[c] == origin:
                assert l_new[c] <= base[c] + 1e-15  # (ii) decreased
            elif inputs.assignment[c] == target:
                assert l_new[c] >= base[c] - 1e-15  # (iii) increased
            else:
                assert l_new[c] == pytest.approx(base[c])  # (iv) unchanged


class TestMigrationAndUpdate:
    def test_apply_migration_moves_demand(self, rng):
        inputs = _random_inputs(rng, m=8, k=3)
        pm = PerformanceMatrix(inputs, StubPredictor())
        i = 2
        origin = int(inputs.assignment[i])
        target = (origin + 1) % inputs.k
        before_origin = inputs.node_totals[origin].copy()
        before_target = inputs.node_totals[target].copy()
        pm.apply_migration(i, target)
        np.testing.assert_allclose(
            inputs.node_totals[origin], np.maximum(before_origin - inputs.demands[i], 0)
        )
        np.testing.assert_allclose(
            inputs.node_totals[target], before_target + inputs.demands[i]
        )
        assert inputs.assignment[i] == target

    def test_noop_migration_rejected(self, rng):
        inputs = _random_inputs(rng)
        pm = PerformanceMatrix(inputs, StubPredictor())
        with pytest.raises(SchedulingError):
            pm.apply_migration(0, int(inputs.assignment[0]))

    def test_migration_gain_realised(self):
        """Predicted reduction == actual reduction in predicted overall
        latency once the migration is applied (self-consistency)."""
        rng = np.random.default_rng(11)
        inputs = _random_inputs(rng, m=10, k=4)
        pm = PerformanceMatrix(inputs, StubPredictor()).build("fast")
        i, j = np.unravel_index(np.argmax(pm.L), pm.L.shape)
        predicted_gain = pm.L[i, j]
        before = pm.current_overall
        pm.apply_migration(int(i), int(j))
        after = pm.current_overall
        assert before - after == pytest.approx(predicted_gain, rel=1e-9)

    def test_algorithm2_update_matches_fresh_entries(self, rng):
        inputs = _random_inputs(rng, m=10, k=4)
        pred = StubPredictor()
        pm = PerformanceMatrix(inputs, pred).build("fast")
        i, j = np.unravel_index(np.argmax(pm.L), pm.L.shape)
        i, j = int(i), int(j)
        origin = pm.apply_migration(i, j)
        candidates = [c for c in range(inputs.m) if c != i]
        pm.algorithm2_update(i, origin, j, candidates)
        # Affected columns must equal fresh exact entries.
        for r in candidates:
            for c in (origin, j):
                fresh = pm.entry(r, c)
                assert pm.L[r, c] == pytest.approx(fresh[0], abs=1e-12)
            if int(inputs.assignment[r]) in (origin, j):
                for c in range(inputs.k):
                    fresh = pm.entry(r, c)
                    assert pm.L[r, c] == pytest.approx(fresh[0], abs=1e-12)

    def test_update_before_build_rejected(self, rng):
        pm = PerformanceMatrix(_random_inputs(rng), StubPredictor())
        with pytest.raises(SchedulingError):
            pm.algorithm2_update(0, 0, 1, [1])

    def test_rebuild_rows(self, rng):
        inputs = _random_inputs(rng, m=8, k=3)
        pm = PerformanceMatrix(inputs, StubPredictor()).build("fast")
        pm.apply_migration(0, (int(inputs.assignment[0]) + 1) % inputs.k)
        pm.rebuild_rows([1, 2])
        for r in (1, 2):
            for c in range(inputs.k):
                assert pm.L[r, c] == pytest.approx(pm.entry(r, c)[0], abs=1e-12)


class TestInputValidation:
    def test_bad_shapes(self, rng):
        good = _random_inputs(rng)
        with pytest.raises(ModelError):
            MatrixInputs(
                stage_of=good.stage_of,
                classes=good.classes[:-1],
                demands=good.demands,
                assignment=good.assignment,
                node_totals=good.node_totals,
                arrival_rates=good.arrival_rates,
            )

    def test_assignment_out_of_range(self, rng):
        good = _random_inputs(rng)
        bad = good.assignment.copy()
        bad[0] = 99
        with pytest.raises(ModelError):
            MatrixInputs(
                good.stage_of,
                good.classes,
                good.demands,
                bad,
                good.node_totals,
                good.arrival_rates,
            )

    def test_unsorted_stage_rejected(self, rng):
        good = _random_inputs(rng)
        bad = good.stage_of.copy()
        bad[0] = bad[-1] + 1
        with pytest.raises(ModelError):
            MatrixInputs(
                bad,
                good.classes,
                good.demands,
                good.assignment,
                good.node_totals,
                good.arrival_rates,
            )

    def test_copy_independent(self, rng):
        a = _random_inputs(rng)
        b = a.copy()
        b.assignment[0] = (b.assignment[0] + 1) % b.k
        assert a.assignment[0] != b.assignment[0] or a.k == 1


class TestClassWeightedObjective:
    """Request-class mix in the overall-latency objective."""

    def _classed(self, inputs, weights, participation, scales=None):
        # Densify stage indices: random instances may skip a stage
        # label, and participation columns must align with the stages
        # that actually exist (runner-built inputs are always dense).
        stage_of = np.unique(inputs.stage_of, return_inverse=True)[1]
        n_stages = int(stage_of.max()) + 1
        return MatrixInputs(
            stage_of=stage_of,
            classes=list(inputs.classes),
            demands=inputs.demands.copy(),
            assignment=inputs.assignment.copy(),
            node_totals=inputs.node_totals.copy(),
            arrival_rates=inputs.arrival_rates.copy(),
            class_weights=np.asarray(weights, dtype=np.float64),
            class_stage_participation=np.broadcast_to(
                np.asarray(participation, dtype=np.float64),
                (len(weights), n_stages),
            ).copy(),
            class_service_scales=(
                None if scales is None
                else np.asarray(scales, dtype=np.float64)
            ),
        )

    def test_single_unit_class_is_bit_identical_to_classless(self, rng):
        """The degenerate mix must not perturb the objective at all —
        the matrix-side face of the resolve_classes -> None contract."""
        inputs = _random_inputs(rng, m=14, k=4)
        plain = PerformanceMatrix(inputs.copy(), StubPredictor()).build("fast")
        classed = PerformanceMatrix(
            self._classed(inputs, [1.0], 1.0), StubPredictor()
        ).build("fast")
        np.testing.assert_array_equal(plain.L, classed.L)
        np.testing.assert_array_equal(plain.R, classed.R)

    def test_light_class_discounts_the_objective(self, rng):
        """A class that skips stages shrinks predicted overall latency,
        so migration gains on skipped stages are discounted."""
        inputs = _random_inputs(rng, m=14, k=4)
        full = PerformanceMatrix(
            self._classed(inputs, [1.0], 1.0), StubPredictor()
        )
        mixed_inputs = self._classed(inputs, [0.5, 0.5], 1.0)
        part = np.ones_like(mixed_inputs.class_stage_participation)
        part[1, 1:] = 0.0  # class 2 only visits the entry stage
        mixed_inputs.class_stage_participation = part
        mixed = PerformanceMatrix(mixed_inputs, StubPredictor())
        assert mixed.base_overall < full.base_overall

    def test_unit_service_scales_bit_identical(self, rng):
        """All-ones σ must not perturb the objective — the matrix face
        of the service_scale contract (None and ones are the same)."""
        inputs = _random_inputs(rng, m=14, k=4)
        plain = PerformanceMatrix(
            self._classed(inputs, [0.5, 0.5], 1.0), StubPredictor()
        ).build("fast")
        scaled = PerformanceMatrix(
            self._classed(inputs, [0.5, 0.5], 1.0, scales=[1.0, 1.0]),
            StubPredictor(),
        ).build("fast")
        np.testing.assert_array_equal(plain.L, scaled.L)
        np.testing.assert_array_equal(plain.R, scaled.R)

    def test_doubling_a_class_scale_moves_the_objective(self, rng):
        """PR-6 follow-up: a 2x service_scale class must raise the
        predicted mixed objective (the simulators already charge it)."""
        inputs = _random_inputs(rng, m=14, k=4)
        plain = PerformanceMatrix(
            self._classed(inputs, [0.5, 0.5], 1.0), StubPredictor()
        )
        heavy = PerformanceMatrix(
            self._classed(inputs, [0.5, 0.5], 1.0, scales=[1.0, 2.0]),
            StubPredictor(),
        )
        assert heavy.base_overall > plain.base_overall
        # Full participation, equal weights: the heavy class's chain
        # doubles, so the mix rises by exactly a quarter... of twice
        # the base — i.e. 1.5x overall.
        assert heavy.base_overall == pytest.approx(
            1.5 * plain.base_overall, rel=1e-12
        )

    def test_scales_require_class_weights(self, rng):
        inputs = _random_inputs(rng)
        with pytest.raises(ModelError, match="requires class_weights"):
            MatrixInputs(
                stage_of=inputs.stage_of, classes=inputs.classes,
                demands=inputs.demands, assignment=inputs.assignment,
                node_totals=inputs.node_totals,
                arrival_rates=inputs.arrival_rates,
                class_service_scales=np.array([1.0]),
            )

    @pytest.mark.parametrize(
        "scales,message",
        [
            ([1.0, 1.0, 1.0], r"\(C,\)"),
            ([1.0, 0.0], "finite and > 0"),
            ([1.0, -2.0], "finite and > 0"),
            ([1.0, np.nan], "finite and > 0"),
        ],
    )
    def test_bad_scales_rejected(self, rng, scales, message):
        inputs = _random_inputs(rng)
        with pytest.raises(ModelError, match=message):
            self._classed(inputs, [0.5, 0.5], 1.0, scales=scales)

    def test_copy_carries_the_scales(self, rng):
        inputs = self._classed(
            _random_inputs(rng), [0.5, 0.5], 1.0, scales=[1.0, 2.0]
        )
        dup = inputs.copy()
        np.testing.assert_array_equal(
            dup.class_service_scales, inputs.class_service_scales
        )
        assert dup.class_service_scales is not inputs.class_service_scales

    def test_fields_must_come_together(self, rng):
        inputs = _random_inputs(rng)
        with pytest.raises(ModelError, match="together"):
            MatrixInputs(
                stage_of=inputs.stage_of, classes=inputs.classes,
                demands=inputs.demands, assignment=inputs.assignment,
                node_totals=inputs.node_totals,
                arrival_rates=inputs.arrival_rates,
                class_weights=np.array([1.0]),
            )
        with pytest.raises(ModelError, match="together"):
            MatrixInputs(
                stage_of=inputs.stage_of, classes=inputs.classes,
                demands=inputs.demands, assignment=inputs.assignment,
                node_totals=inputs.node_totals,
                arrival_rates=inputs.arrival_rates,
                class_stage_participation=np.ones((1, 3)),
            )

    @pytest.mark.parametrize(
        "weights,participation,message",
        [
            ([0.7, 0.7], 1.0, "sum to 1"),
            ([1.5, -0.5], 1.0, "sum to 1"),
            ([1.0], 1.5, r"\[0, 1\]"),
        ],
    )
    def test_bad_values_rejected(self, rng, weights, participation, message):
        inputs = _random_inputs(rng)
        with pytest.raises(ModelError, match=message):
            self._classed(inputs, weights, participation)

    def test_bad_shape_rejected(self, rng):
        inputs = _random_inputs(rng)
        with pytest.raises(ModelError, match=r"\(C, S\)"):
            MatrixInputs(
                stage_of=inputs.stage_of, classes=inputs.classes,
                demands=inputs.demands, assignment=inputs.assignment,
                node_totals=inputs.node_totals,
                arrival_rates=inputs.arrival_rates,
                class_weights=np.array([1.0]),
                class_stage_participation=np.ones((2, 99)),
            )

    def test_copy_carries_the_mix(self, rng):
        inputs = self._classed(_random_inputs(rng), [0.5, 0.5], 1.0)
        dup = inputs.copy()
        np.testing.assert_array_equal(dup.class_weights, inputs.class_weights)
        assert dup.class_weights is not inputs.class_weights
        np.testing.assert_array_equal(
            dup.class_stage_participation, inputs.class_stage_participation
        )
