"""Tests for the Eq. 2 M/G/1 latency model, cross-validated against the
Lindley sample-path simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnstableQueueError
from repro.model.queueing import (
    hedged_latency,
    mg1_latency,
    mg1_latency_array,
    mg1_waiting_time,
    mm1_latency,
    quickest_of_k_latency,
    reissue_latency,
    utilisation,
)
from repro.simcore.distributions import Deterministic, Exponential, LogNormal
from repro.simcore.lindley import sojourn_times


class TestClosedForms:
    def test_mm1_equals_mg1_with_unit_scv(self):
        # Paper: "when ... C^2_x = 1, the M/G/1 queueing system equals
        # the M/M/1 queueing system and the expected latency l = 1/(mu-lambda)".
        x, lam = 0.008, 50.0
        assert mg1_latency(x, 1.0, lam) == pytest.approx(mm1_latency(x, lam))
        assert mm1_latency(x, lam) == pytest.approx(1.0 / (1.0 / x - lam))

    def test_md1_half_the_mm1_wait(self):
        # Deterministic service: wait is half the exponential case.
        x, lam = 0.005, 100.0
        assert mg1_waiting_time(x, 0.0, lam) == pytest.approx(
            mg1_waiting_time(x, 1.0, lam) / 2
        )

    def test_zero_arrivals_latency_is_service_time(self):
        assert mg1_latency(0.01, 1.0, 0.0) == pytest.approx(0.01)

    def test_utilisation(self):
        assert utilisation(0.01, 50.0) == pytest.approx(0.5)

    @given(
        x=st.floats(min_value=1e-4, max_value=0.1),
        scv=st.floats(min_value=0.0, max_value=5.0),
        rho=st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_latency_increasing_in_load(self, x, scv, rho):
        lam = rho / x
        l1 = mg1_latency(x, scv, lam)
        l2 = mg1_latency(x, scv, lam * 0.5)
        assert l1 >= l2 - 1e-12

    def test_unstable_queue_rejected(self):
        with pytest.raises(UnstableQueueError):
            mg1_latency(0.01, 1.0, 100.0)  # rho = 1
        with pytest.raises(UnstableQueueError):
            mm1_latency(0.01, 120.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(UnstableQueueError):
            mg1_latency(0.0, 1.0, 10.0)
        with pytest.raises(UnstableQueueError):
            mg1_latency(0.01, -0.5, 10.0)
        with pytest.raises(UnstableQueueError):
            mg1_latency(0.01, 1.0, -10.0)


class TestAgainstSamplePath:
    """Eq. 2 must match the Lindley simulator — the core consistency
    check between the analytic predictor and the simulated world."""

    @pytest.mark.parametrize(
        "dist",
        [
            Exponential(0.006),
            Deterministic(0.006),
            LogNormal(0.006, 0.8),
            LogNormal(0.006, 2.0),
        ],
        ids=["M/M/1", "M/D/1", "lognormal-0.8", "lognormal-2.0"],
    )
    @pytest.mark.parametrize("rho", [0.3, 0.7])
    def test_mean_sojourn_matches(self, dist, rho):
        rng = np.random.default_rng(123)
        lam = rho / dist.mean
        n = 400_000
        arrivals = np.cumsum(rng.exponential(1.0 / lam, n))
        services = dist.sample(rng, n)
        measured = sojourn_times(arrivals, services).mean()
        predicted = mg1_latency(dist.mean, dist.scv, lam)
        assert measured == pytest.approx(predicted, rel=0.04)


class TestArrayForm:
    def test_matches_scalar_below_cap(self):
        x = np.array([0.005, 0.01, 0.02])
        scv = np.array([0.5, 1.0, 2.0])
        lam = np.array([10.0, 30.0, 20.0])
        out = mg1_latency_array(x, scv, lam)
        for i in range(3):
            assert out[i] == pytest.approx(mg1_latency(x[i], scv[i], lam[i]))

    def test_saturated_entries_finite_and_worst(self):
        x = 0.01
        out = mg1_latency_array(x, 1.0, np.array([50.0, 99.0, 150.0, 500.0]))
        assert np.all(np.isfinite(out))
        # Monotone non-decreasing in lambda, flat at the cap.
        assert out[0] < out[1] <= out[2] == out[3]

    def test_broadcasting(self):
        out = mg1_latency_array(0.01, 1.0, np.array([[10.0], [20.0]]))
        assert out.shape == (2, 1)

    def test_cap_validation(self):
        with pytest.raises(UnstableQueueError):
            mg1_latency_array(0.01, 1.0, 10.0, rho_max=1.5)

    def test_bad_values_rejected(self):
        with pytest.raises(UnstableQueueError):
            mg1_latency_array(-0.01, 1.0, 10.0)
        with pytest.raises(UnstableQueueError):
            mg1_latency_array(0.01, -1.0, 10.0)
        with pytest.raises(UnstableQueueError):
            mg1_latency_array(0.01, 1.0, -10.0)

    def test_rho_cap_monotone_ranking_preserved(self):
        # A saturated placement must rank strictly worse than any
        # non-saturated one with the same service shape.
        stable = mg1_latency_array(0.01, 1.0, 80.0)
        saturated = mg1_latency_array(0.01, 1.0, 120.0)
        assert saturated > stable


class TestBenefitTransforms:
    """The §VI-C closed forms: exact for exponential sojourns, checked
    against Monte Carlo on the exact cases and on their limits."""

    def test_quickest_of_k_is_w_over_k(self):
        assert quickest_of_k_latency(0.030, 3) == pytest.approx(0.010)
        assert quickest_of_k_latency(0.030, 1) == pytest.approx(0.030)
        with pytest.raises(UnstableQueueError):
            quickest_of_k_latency(0.030, 0)

    def test_quickest_of_k_matches_monte_carlo(self):
        rng = np.random.default_rng(7)
        w, k = 0.020, 4
        sims = rng.exponential(w, size=(200_000, k)).min(axis=1).mean()
        assert quickest_of_k_latency(w, k) == pytest.approx(sims, rel=0.02)

    def test_reissue_factor_is_threshold_free(self):
        # E[L] = W(1+q)/2 whatever the threshold: the T terms cancel.
        w = 0.040
        assert reissue_latency(w, 0.90) == pytest.approx(w * 0.95)
        assert reissue_latency(w, 0.99) == pytest.approx(w * 0.995)
        with pytest.raises(UnstableQueueError):
            reissue_latency(w, 1.0)
        with pytest.raises(UnstableQueueError):
            reissue_latency(w, 0.0)

    def test_reissue_matches_monte_carlo(self):
        rng = np.random.default_rng(11)
        w, q = 0.025, 0.9
        n = 200_000
        primary = rng.exponential(w, n)
        threshold = -w * np.log(1.0 - q)  # exact q-quantile of Exp(1/W)
        backup = threshold + rng.exponential(w, n)
        # Memorylessness: past T the original's residual is a fresh
        # Exp(W); the finish is the min of the two copies.
        finished = np.where(
            primary <= threshold, primary, np.minimum(primary, backup)
        )
        assert reissue_latency(w, q) == pytest.approx(
            finished.mean(), rel=0.02
        )

    def test_hedged_limits(self):
        w = 0.030
        # T -> 0: hedge immediately == RED-2, factor 1/2.
        assert hedged_latency(w, 0.0) == pytest.approx(w / 2)
        # T -> inf: never hedge, factor 1.
        assert hedged_latency(w, 10.0) == pytest.approx(w)
        # Monotone increasing in the delay between the limits.
        delays = np.array([0.001, 0.010, 0.050, 0.200])
        vals = np.array([float(hedged_latency(w, t)) for t in delays])
        assert np.all(np.diff(vals) > 0)
        with pytest.raises(UnstableQueueError):
            hedged_latency(w, -0.001)

    def test_hedged_matches_monte_carlo(self):
        rng = np.random.default_rng(13)
        w, t = 0.020, 0.015
        n = 200_000
        primary = rng.exponential(w, n)
        backup = t + rng.exponential(w, n)
        finished = np.where(primary <= t, primary, np.minimum(primary, backup))
        assert hedged_latency(w, t) == pytest.approx(finished.mean(), rel=0.02)

    def test_transforms_vectorise(self):
        w = np.array([0.010, 0.020, 0.040])
        assert quickest_of_k_latency(w, 2).shape == (3,)
        assert reissue_latency(w, 0.9).shape == (3,)
        assert hedged_latency(w, 0.01).shape == (3,)
