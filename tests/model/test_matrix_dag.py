"""DAG-aware performance matrix: critical-path objective + validation.

With ``MatrixInputs.stage_predecessors`` the matrix composes stage
maxima along the topology's critical path instead of Eq. 4's chain
sum, so ``L`` weights a straggler by whether its stage actually gates
the join.  The fast/reference agreement property must keep holding,
and chain predecessors must reproduce the chain objective exactly.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.matrix import MatrixInputs, PerformanceMatrix
from repro.service.component import ComponentClass

from tests.model.test_matrix import StubPredictor, _random_inputs


def _with_preds(inputs: MatrixInputs, preds) -> MatrixInputs:
    return MatrixInputs(
        stage_of=inputs.stage_of.copy(),
        classes=list(inputs.classes),
        demands=inputs.demands.copy(),
        assignment=inputs.assignment.copy(),
        node_totals=inputs.node_totals.copy(),
        arrival_rates=inputs.arrival_rates.copy(),
        stage_predecessors=preds,
    )


def _dag_inputs(rng, m=12, k=4, n_stages=4):
    """Random instance + a diamond-ish DAG over its stages."""
    inputs = _random_inputs(rng, m=m, k=k, n_stages=n_stages)
    n = int(inputs.stage_of.max()) + 1
    if n == 1:
        preds = ((),)
    elif n == 2:
        preds = ((), (0,))
    else:
        # 0 -> {1..n-2} in parallel -> n-1 joins everything (skip edge
        # from 0 included).
        preds = ((),) + tuple((0,) for _ in range(1, n - 1)) + (
            tuple(range(n - 1)),
        )
    return _with_preds(inputs, preds)


class TestValidation:
    def test_wrong_length_rejected(self, ):
        rng = np.random.default_rng(0)
        inputs = _random_inputs(rng, n_stages=3)
        n = int(inputs.stage_of.max()) + 1
        with pytest.raises(ModelError, match="entries for"):
            _with_preds(inputs, tuple(() for _ in range(n + 1)))

    def test_forward_reference_rejected(self):
        rng = np.random.default_rng(1)
        inputs = _random_inputs(rng, n_stages=3)
        n = int(inputs.stage_of.max()) + 1
        bad = ((),) * (n - 1) + ((n - 1,),)  # self-reference in last
        with pytest.raises(ModelError, match="earlier"):
            _with_preds(inputs, bad)

    def test_copy_carries_predecessors(self):
        rng = np.random.default_rng(2)
        inputs = _dag_inputs(rng)
        assert inputs.copy().stage_predecessors == inputs.stage_predecessors


class TestChainDegeneracy:
    @pytest.mark.parametrize("seed", range(4))
    def test_explicit_chain_equals_implicit(self, seed):
        """stage_predecessors=((), (0,), (1,), ...) is the same
        objective as None — Eq. 4 is the chain's critical path."""
        rng = np.random.default_rng(seed)
        inputs = _random_inputs(rng, m=12 + seed, n_stages=3)
        n = int(inputs.stage_of.max()) + 1
        chain = tuple((s - 1,) if s else () for s in range(n))
        pred = StubPredictor()
        implicit = PerformanceMatrix(inputs.copy(), pred).build("fast")
        explicit = PerformanceMatrix(
            _with_preds(inputs, chain), pred
        ).build("fast")
        assert explicit.base_overall == pytest.approx(
            implicit.base_overall, rel=1e-12
        )
        np.testing.assert_allclose(
            explicit.L, implicit.L, rtol=1e-10, atol=1e-14
        )
        np.testing.assert_allclose(
            explicit.R, implicit.R, rtol=1e-10, atol=1e-14
        )


class TestFastEqualsReferenceOnDags:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_dag_instances(self, seed):
        rng = np.random.default_rng(100 + seed)
        inputs = _dag_inputs(rng, m=10 + seed, k=3 + seed % 3)
        pred = StubPredictor()
        fast = PerformanceMatrix(inputs.copy(), pred).build("fast")
        ref = PerformanceMatrix(inputs.copy(), pred).build("reference")
        np.testing.assert_allclose(fast.L, ref.L, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(fast.R, ref.R, rtol=1e-10, atol=1e-12)

    def test_algorithm2_update_stays_exact(self):
        rng = np.random.default_rng(7)
        inputs = _dag_inputs(rng, m=14, k=4)
        pred = StubPredictor()
        pm = PerformanceMatrix(inputs, pred).build("fast")
        i = int(np.unravel_index(np.argmax(pm.L), pm.L.shape)[0])
        j = int(np.unravel_index(np.argmax(pm.L), pm.L.shape)[1])
        if j == int(inputs.assignment[i]):
            j = (j + 1) % inputs.k
        origin = pm.apply_migration(i, j)
        candidates = [c for c in range(inputs.m) if c != i]
        pm.algorithm2_update(i, origin, j, candidates)
        fresh = PerformanceMatrix(inputs.copy(), pred).build("fast")
        rows = np.asarray(candidates)
        np.testing.assert_allclose(
            pm.L[rows][:, [origin, j]],
            fresh.L[rows][:, [origin, j]],
            rtol=1e-9, atol=1e-12,
        )


class TestCriticalPathWeighting:
    def _branching_inputs(self, dag: bool) -> MatrixInputs:
        """Entry → {slow branch, fast branch} → join, on 3 nodes.

        The fast-branch component (index 2) carries *zero* demand, so
        migrating it perturbs nobody else's contention — its L row
        isolates exactly the objective's view of its own stage.  It
        sits on a semi-hot node with calmer nodes available, so a
        chain-sum objective sees a genuine own-latency win there.
        """
        preds = ((), (0,), (0,), (1, 2)) if dag else None
        stage_of = np.array([0, 1, 2, 3])
        classes = [ComponentClass.GENERIC] * 4
        demands = np.tile(np.array([0.2, 2.0, 8.0, 3.0]), (4, 1))
        demands[2] = 0.0
        k = 3
        assignment = np.array([2, 0, 1, 2])
        node_totals = np.zeros((k, 4))
        for i in range(4):
            node_totals[assignment[i]] += demands[i]
        node_totals[0] += np.array([0.8, 30.0, 200.0, 80.0])  # hot: slow branch
        node_totals[1] += np.array([0.3, 12.0, 80.0, 30.0])   # semi-hot: fast
        arrival = np.full(4, 20.0)
        return MatrixInputs(
            stage_of=stage_of,
            classes=classes,
            demands=demands,
            assignment=assignment,
            node_totals=node_totals,
            arrival_rates=arrival,
            stage_predecessors=preds,
        )

    def test_off_critical_path_migration_gains_nothing(self):
        """Under the DAG objective the fast branch has slack — moving
        its component predicts zero overall gain; the slow branch's
        straggler still shows a real reduction.  The chain-sum
        objective (same instance, no predecessors) would credit the
        fast branch's own-latency win, which is the mis-weighting the
        critical path fixes."""
        pred = StubPredictor()
        dag = PerformanceMatrix(self._branching_inputs(True), pred).build("fast")
        chain = PerformanceMatrix(self._branching_inputs(False), pred).build("fast")
        # The chain objective sees a gain for the off-path component...
        assert chain.L[2].max() > 1e-6
        # ...the critical-path objective correctly sees none...
        assert dag.L[2].max() <= 1e-12
        # ...while the on-path straggler keeps a real predicted gain.
        assert dag.L[1].max() > 1e-6
