"""Tests for the single-resource regressors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, NotFittedError
from repro.model.regression import PolynomialRegressor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestFitPredict:
    def test_recovers_linear_relationship(self, rng):
        u = rng.uniform(0, 1, 200)
        x = 0.005 + 0.01 * u
        reg = PolynomialRegressor(degree=1).fit(u, x)
        pred = reg.predict(u)
        np.testing.assert_allclose(pred, x, rtol=1e-8)

    def test_recovers_quadratic_relationship(self, rng):
        u = rng.uniform(0, 300, 300)
        x = 0.004 + 2e-5 * u + 1e-7 * u * u
        reg = PolynomialRegressor(degree=2).fit(u, x)
        np.testing.assert_allclose(reg.predict(u), x, rtol=1e-6)

    def test_noisy_fit_near_truth(self, rng):
        u = rng.uniform(0, 1, 2000)
        truth = 0.006 * (1 + 0.5 * u)
        x = truth * (1 + 0.02 * rng.standard_normal(2000))
        reg = PolynomialRegressor(degree=2).fit(u, x)
        grid = np.linspace(0.05, 0.95, 10)
        np.testing.assert_allclose(
            reg.predict(grid), 0.006 * (1 + 0.5 * grid), rtol=0.01
        )

    def test_scalar_prediction_shape(self, rng):
        reg = PolynomialRegressor(degree=1).fit([0, 1, 2], [0.0, 1.0, 2.0])
        out = reg.predict(1.5)
        assert out.shape == ()
        assert float(out) == pytest.approx(1.5)

    def test_matrix_prediction_shape(self):
        reg = PolynomialRegressor(degree=1).fit([0, 1, 2], [0.0, 1.0, 2.0])
        out = reg.predict(np.array([[0.0, 1.0], [2.0, 3.0]]))
        assert out.shape == (2, 2)

    def test_constant_feature_predicts_mean(self):
        # Degenerate profiling run: contention never varied.
        reg = PolynomialRegressor(degree=2).fit(
            np.full(10, 0.5), np.full(10, 0.007)
        )
        assert float(reg.predict(0.5)) == pytest.approx(0.007, rel=1e-6)

    @given(
        slope=st.floats(min_value=-5, max_value=5),
        intercept=st.floats(min_value=0.1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_on_any_line(self, slope, intercept):
        u = np.linspace(0, 1, 50)
        x = intercept + slope * u
        reg = PolynomialRegressor(degree=1).fit(u, x)
        np.testing.assert_allclose(reg.predict(u), x, rtol=1e-7, atol=1e-9)


class TestValidation:
    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            PolynomialRegressor().predict(1.0)

    def test_coef_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            PolynomialRegressor().coef

    def test_too_few_samples_rejected(self):
        with pytest.raises(ModelError):
            PolynomialRegressor(degree=2).fit([1.0, 2.0], [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            PolynomialRegressor(degree=1).fit([1.0, 2.0, 3.0], [1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(ModelError):
            PolynomialRegressor(degree=1).fit([1.0, np.nan, 2.0], [1.0, 2.0, 3.0])

    def test_bad_degree_rejected(self):
        with pytest.raises(ModelError):
            PolynomialRegressor(degree=0)

    def test_negative_ridge_rejected(self):
        with pytest.raises(ModelError):
            PolynomialRegressor(ridge=-1.0)

    def test_is_fitted_flag(self):
        reg = PolynomialRegressor(degree=1)
        assert not reg.is_fitted
        reg.fit([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        assert reg.is_fitted
        assert reg.n_samples == 3
