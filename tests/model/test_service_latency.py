"""Tests for Eqs. 3–4 (stage max, overall sum)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.model.service_latency import overall_latency, stage_latencies, stage_offsets


class TestStageOffsets:
    def test_simple(self):
        np.testing.assert_array_equal(
            stage_offsets(np.array([0, 0, 1, 1, 1, 2])), [0, 2, 5]
        )

    def test_single_stage(self):
        np.testing.assert_array_equal(stage_offsets(np.array([0, 0, 0])), [0])

    def test_decreasing_rejected(self):
        with pytest.raises(ModelError):
            stage_offsets(np.array([0, 1, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            stage_offsets(np.array([]))


class TestEquations34:
    def test_paper_fig3_example(self):
        # Fig. 3: 3 stages; stage 2 has two components.  Latencies such
        # that l_overall = 57 ms before migration.
        stage_of = np.array([0, 1, 1, 2])
        l = np.array([10.0, 35.0, 7.0, 12.0]) / 1e3
        assert overall_latency(l, stage_of) == pytest.approx(0.057)

    def test_stage_max(self):
        stage_of = np.array([0, 0, 1, 1])
        l = np.array([1.0, 5.0, 2.0, 3.0])
        np.testing.assert_allclose(stage_latencies(l, stage_of), [5.0, 3.0])

    def test_straggler_dominates(self):
        # §I's motivating example: 99 fast components at 10 ms, one at 1 s.
        stage_of = np.zeros(100, dtype=int)
        l = np.full(100, 0.010)
        l[37] = 1.0
        assert overall_latency(l, stage_of) == pytest.approx(1.0)

    @given(
        lat=st.lists(
            st.floats(min_value=0, max_value=10), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_single_stage_is_plain_max(self, lat):
        l = np.array(lat)
        assert overall_latency(l, np.zeros(l.size, dtype=int)) == pytest.approx(
            l.max()
        )

    def test_sum_over_stages(self):
        stage_of = np.array([0, 1, 2])
        l = np.array([1.0, 2.0, 3.0])
        assert overall_latency(l, stage_of) == pytest.approx(6.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            stage_latencies(np.ones(3), np.zeros(4, dtype=int))

    def test_improving_any_straggler_lowers_overall(self):
        stage_of = np.array([0, 0, 1, 1])
        l = np.array([4.0, 9.0, 2.0, 7.0])
        before = overall_latency(l, stage_of)
        l2 = l.copy()
        l2[1] = 5.0  # straggler of stage 0 improves
        assert overall_latency(l2, stage_of) < before


class TestMixedClassOverallLatency:
    """Class-weighted Eq. 4 composition over class-restricted DAGs."""

    DIAMOND = ((), (0,), (0,), (1, 2))

    def test_single_full_class_is_the_chain_sum(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([1.0, 2.0, 3.0])
        got = mixed_class_overall_latency(
            lats, np.array([1.0]), np.ones((1, 3))
        )
        assert got == pytest.approx(6.0)
        assert isinstance(got, float)

    def test_single_full_class_is_the_dag_critical_path(self):
        from repro.model.service_latency import (
            dag_overall_latency,
            mixed_class_overall_latency,
        )

        lats = np.array([1.0, 5.0, 2.0, 1.0])
        got = mixed_class_overall_latency(
            lats, np.array([1.0]), np.ones((1, 4)), self.DIAMOND
        )
        assert got == pytest.approx(dag_overall_latency(lats, self.DIAMOND))
        assert got == pytest.approx(7.0)  # 1 + max(5, 2) + 1

    def test_mix_weights_average_per_class_chains(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([1.0, 2.0, 3.0])
        part = np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
        got = mixed_class_overall_latency(
            lats, np.array([0.5, 0.5]), part
        )
        assert got == pytest.approx(0.5 * 6.0 + 0.5 * 4.0)

    def test_class_skipping_a_branch_shortens_its_critical_path(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([1.0, 5.0, 2.0, 1.0])
        part = np.array([[1.0, 1.0, 1.0, 1.0], [1.0, 0.0, 1.0, 1.0]])
        got = mixed_class_overall_latency(
            lats, np.array([0.5, 0.5]), part, self.DIAMOND
        )
        # Full class: 7; slow-branch skipper: 1 + max(0, 2) + 1 = 4.
        assert got == pytest.approx(0.5 * 7.0 + 0.5 * 4.0)

    def test_fractional_participation_scales_the_stage(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([2.0, 4.0])
        got = mixed_class_overall_latency(
            lats, np.array([1.0]), np.array([[1.0, 0.25]])
        )
        assert got == pytest.approx(2.0 + 0.25 * 4.0)

    def test_batched_sheets_go_through_in_one_call(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        got = mixed_class_overall_latency(
            lats, np.array([1.0]), np.ones((1, 3))
        )
        np.testing.assert_allclose(got, [6.0, 60.0])

    def test_validation_rejects_bad_inputs(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([1.0, 2.0])
        ones = np.ones((1, 2))
        with pytest.raises(ModelError):
            mixed_class_overall_latency(np.empty(0), np.array([1.0]), ones)
        with pytest.raises(ModelError):
            mixed_class_overall_latency(lats, np.empty(0), ones)
        with pytest.raises(ModelError):
            mixed_class_overall_latency(lats, np.array([1.0]), np.ones((2, 2)))
        with pytest.raises(ModelError):
            mixed_class_overall_latency(lats, np.array([0.7, 0.7]), np.ones((2, 2)))
        with pytest.raises(ModelError):
            mixed_class_overall_latency(
                lats, np.array([1.0]), np.array([[1.0, 1.5]])
            )
        with pytest.raises(ModelError):
            mixed_class_overall_latency(
                lats, np.array([1.5, -0.5]), np.ones((2, 2))
            )


class TestClassServiceScales:
    """RequestClass.service_scale in the predicted objective — the
    simulators have applied σ_c to every sample since the classes PR;
    the prediction must account for the same multiplier."""

    def test_unit_scales_bit_identical_to_none(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([1.0, 2.0, 3.0])
        w = np.array([0.25, 0.75])
        part = np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
        plain = mixed_class_overall_latency(lats, w, part)
        scaled = mixed_class_overall_latency(
            lats, w, part, class_service_scales=np.ones(2)
        )
        assert scaled == plain

    def test_doubling_a_class_scale_moves_the_mixed_objective(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([1.0, 2.0, 3.0])
        w = np.array([0.5, 0.5])
        part = np.ones((2, 3))
        plain = mixed_class_overall_latency(lats, w, part)
        moved = mixed_class_overall_latency(
            lats, w, part, class_service_scales=np.array([1.0, 2.0])
        )
        # The heavy class's chain doubles: 0.5*6 + 0.5*12 vs 6.
        assert moved == pytest.approx(9.0)
        assert moved > plain

    def test_scale_applies_only_to_visited_stages(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([2.0, 4.0])
        got = mixed_class_overall_latency(
            lats,
            np.array([1.0]),
            np.array([[1.0, 0.25]]),
            class_service_scales=np.array([3.0]),
        )
        assert got == pytest.approx(3.0 * (2.0 + 0.25 * 4.0))

    def test_dag_critical_path_respects_scales(self):
        from repro.model.service_latency import (
            dag_overall_latency,
            mixed_class_overall_latency,
        )

        diamond = ((), (0,), (0,), (1, 2))
        lats = np.array([1.0, 5.0, 2.0, 1.0])
        got = mixed_class_overall_latency(
            lats,
            np.array([1.0]),
            np.ones((1, 4)),
            diamond,
            class_service_scales=np.array([2.0]),
        )
        assert got == pytest.approx(dag_overall_latency(2.0 * lats, diamond))

    def test_bad_scales_rejected(self):
        from repro.model.service_latency import mixed_class_overall_latency

        lats = np.array([1.0, 2.0])
        w = np.array([1.0])
        ones = np.ones((1, 2))
        with pytest.raises(ModelError, match=r"\(C,\)"):
            mixed_class_overall_latency(
                lats, w, ones, class_service_scales=np.ones(3)
            )
        with pytest.raises(ModelError, match="finite and > 0"):
            mixed_class_overall_latency(
                lats, w, ones, class_service_scales=np.array([0.0])
            )
        with pytest.raises(ModelError, match="finite and > 0"):
            mixed_class_overall_latency(
                lats, w, ones, class_service_scales=np.array([np.inf])
            )
