"""Property-based tests for the DAG critical-path latency composition.

Pins the algebraic contract of
:func:`repro.model.service_latency.dag_overall_latency` (the Eq. 4
generalisation every DAG-aware consumer shares):

- on a **chain** it reduces exactly to the sum of stage latencies
  (Eq. 4), which for grouped inputs is the sum of stage maxima;
- it is **monotone** in any component's latency (bumping one component
  can never shorten the predicted overall latency);
- it is bounded below by the largest stage latency and above by the
  sum of all stage latencies.

Two engines drive the same properties, mirroring
``tests/sim/test_metrics_properties.py``: ``hypothesis`` when
importable, a seeded stdlib-``random`` fallback always.
"""

import random

import numpy as np
import pytest

from repro.model.service_latency import (
    dag_completion_times,
    dag_overall_latency,
    stage_offsets,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # minimal tier-1 environment
    HAVE_HYPOTHESIS = False

MAX_LATENCY_S = 1e3


def _random_predecessors(n_stages, rng):
    """A random valid DAG: each stage waits on a subset of earlier ones."""
    preds = [()]
    for s in range(1, n_stages):
        k = rng.randint(0, s)
        preds.append(tuple(sorted(rng.sample(range(s), k))))
    return tuple(preds)


def _chain(n_stages):
    return tuple(() if s == 0 else (s - 1,) for s in range(n_stages))


# ----------------------------------------------------------------------
# the properties (engine-agnostic)
# ----------------------------------------------------------------------
def check_chain_reduces_to_sum(lats):
    """Eq. 4's degenerate case: chain critical path == sum of stages."""
    lats = np.asarray(lats, dtype=np.float64)
    overall = dag_overall_latency(lats, _chain(lats.size))
    assert overall == pytest.approx(float(lats.sum()), rel=1e-12, abs=1e-15)


def check_monotone_in_stage_latency(lats, preds, stage, bump):
    """Raising any stage's latency never lowers the overall latency."""
    lats = np.asarray(lats, dtype=np.float64)
    before = dag_overall_latency(lats, preds)
    bumped = lats.copy()
    bumped[stage] += bump
    after = dag_overall_latency(bumped, preds)
    assert after >= before - 1e-12


def check_bounds(lats, preds):
    """max stage <= critical path <= sum of stages."""
    lats = np.asarray(lats, dtype=np.float64)
    overall = dag_overall_latency(lats, preds)
    assert overall >= float(lats.max()) - 1e-12
    assert overall <= float(lats.sum()) + 1e-9

    completion = dag_completion_times(lats, preds)
    # Every completion is reachable-path work: within the same bounds.
    assert np.all(completion >= lats - 1e-12)
    assert np.all(completion <= float(lats.sum()) + 1e-9)


def check_batched_matches_rows(rows, preds):
    """The vectorised (batch, S) form equals the per-row scalar form."""
    rows = np.asarray(rows, dtype=np.float64)
    batched = dag_overall_latency(rows, preds)
    singles = np.array([dag_overall_latency(r, preds) for r in rows])
    np.testing.assert_array_equal(batched, singles)


def check_component_monotone(comp_lats, stage_of, preds, index, bump):
    """Through the grouped stage-max reduction, bumping one *component*
    never lowers the DAG overall latency."""
    comp_lats = np.asarray(comp_lats, dtype=np.float64)
    offsets = stage_offsets(stage_of)

    def overall(l):
        stage_max = np.maximum.reduceat(l, offsets)
        return dag_overall_latency(stage_max, preds)

    before = overall(comp_lats)
    bumped = comp_lats.copy()
    bumped[index] += bump
    assert overall(bumped) >= before - 1e-12


def _component_case(rng, n_stages):
    """Random stage-major component latencies + a DAG over the stages."""
    stage_of = []
    for s in range(n_stages):
        stage_of.extend([s] * rng.randint(1, 4))
    lats = [rng.uniform(0.0, MAX_LATENCY_S) for _ in stage_of]
    preds = _random_predecessors(n_stages, rng)
    return lats, np.asarray(stage_of), preds


# ----------------------------------------------------------------------
# engine 1: hypothesis
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    stage_lats = st.lists(
        st.floats(min_value=0.0, max_value=MAX_LATENCY_S, allow_nan=False),
        min_size=1,
        max_size=12,
    )

    class TestHypothesisProperties:
        @given(stage_lats)
        @settings(max_examples=60, deadline=None)
        def test_chain_reduces_to_sum(self, lats):
            check_chain_reduces_to_sum(lats)

        @given(stage_lats, st.randoms(use_true_random=False),
               st.floats(min_value=0.0, max_value=MAX_LATENCY_S))
        @settings(max_examples=60, deadline=None)
        def test_monotone_and_bounded(self, lats, pyrng, bump):
            preds = _random_predecessors(len(lats), pyrng)
            stage = pyrng.randrange(len(lats))
            check_monotone_in_stage_latency(lats, preds, stage, bump)
            check_bounds(lats, preds)

        @given(st.integers(min_value=1, max_value=6),
               st.integers(min_value=1, max_value=5),
               st.randoms(use_true_random=False))
        @settings(max_examples=40, deadline=None)
        def test_batched_matches_rows(self, n_stages, n_rows, pyrng):
            preds = _random_predecessors(n_stages, pyrng)
            rows = [
                [pyrng.uniform(0.0, MAX_LATENCY_S) for _ in range(n_stages)]
                for _ in range(n_rows)
            ]
            check_batched_matches_rows(rows, preds)

        @given(st.integers(min_value=1, max_value=6),
               st.randoms(use_true_random=False),
               st.floats(min_value=0.0, max_value=MAX_LATENCY_S))
        @settings(max_examples=60, deadline=None)
        def test_component_monotone(self, n_stages, pyrng, bump):
            lats, stage_of, preds = _component_case(pyrng, n_stages)
            index = pyrng.randrange(len(lats))
            check_component_monotone(lats, stage_of, preds, index, bump)


# ----------------------------------------------------------------------
# engine 2: stdlib fallback (always runs)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_stdlib_chain_reduces_to_sum(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 12)
    check_chain_reduces_to_sum([rng.uniform(0.0, MAX_LATENCY_S) for _ in range(n)])


@pytest.mark.parametrize("seed", range(12))
def test_stdlib_monotone_and_bounded(seed):
    rng = random.Random(1000 + seed)
    n = rng.randint(1, 12)
    lats = [rng.uniform(0.0, MAX_LATENCY_S) for _ in range(n)]
    preds = _random_predecessors(n, rng)
    check_monotone_in_stage_latency(
        lats, preds, rng.randrange(n), rng.uniform(0.0, MAX_LATENCY_S)
    )
    check_bounds(lats, preds)


@pytest.mark.parametrize("seed", range(8))
def test_stdlib_batched_matches_rows(seed):
    rng = random.Random(2000 + seed)
    n_stages = rng.randint(1, 6)
    preds = _random_predecessors(n_stages, rng)
    rows = [
        [rng.uniform(0.0, MAX_LATENCY_S) for _ in range(n_stages)]
        for _ in range(rng.randint(1, 5))
    ]
    check_batched_matches_rows(rows, preds)


@pytest.mark.parametrize("seed", range(12))
def test_stdlib_component_monotone(seed):
    rng = random.Random(3000 + seed)
    lats, stage_of, preds = _component_case(rng, rng.randint(1, 6))
    check_component_monotone(
        lats, stage_of, preds,
        rng.randrange(len(lats)), rng.uniform(0.0, MAX_LATENCY_S),
    )
