"""Tests for the Eq. 1 combined service-time model."""

import numpy as np
import pytest

from repro.cluster.resources import RESOURCE_KINDS, ResourceKind, ResourceVector
from repro.errors import ModelError, NotFittedError
from repro.model.combined import CombinedServiceTimeModel


def _synthetic_samples(rng, n=500, noise=0.0):
    """Contention driven by a latent 'job intensity': all four resources
    move together, as when profiling against one co-located job."""
    intensity = rng.uniform(0, 1, n)
    u = np.empty((n, 4))
    u[:, 0] = 0.9 * intensity  # core
    u[:, 1] = 30.0 * intensity  # cache MPKI
    u[:, 2] = 200.0 * intensity  # disk MB/s
    u[:, 3] = 80.0 * intensity  # net MB/s
    x = 0.006 * (1 + 0.8 * intensity + 0.3 * intensity**2)
    if noise:
        x = x * (1 + noise * rng.standard_normal(n))
    return u, x


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFit:
    def test_learns_correlated_contention(self, rng):
        u, x = _synthetic_samples(rng)
        model = CombinedServiceTimeModel().fit(u, x)
        pred = model.predict(u)
        rel_err = np.abs(pred - x) / x
        assert rel_err.max() < 0.01

    def test_noisy_fit_small_mape(self, rng):
        u, x = _synthetic_samples(rng, n=2000, noise=0.02)
        model = CombinedServiceTimeModel().fit(u, x)
        grid_u, grid_x = _synthetic_samples(np.random.default_rng(7), n=200)
        pred = model.predict(grid_u)
        assert np.mean(np.abs(pred - grid_x) / grid_x) < 0.02

    def test_weights_follow_relevance(self, rng):
        # Only core contention matters; other columns are noise.
        n = 1000
        u = rng.uniform(0, 1, (n, 4))
        x = 0.005 * (1 + u[:, 0])
        model = CombinedServiceTimeModel().fit(u, x)
        w = model.normalised_weights()
        assert w[ResourceKind.CORE] > 0.5
        for kind in RESOURCE_KINDS[1:]:
            assert w[kind] < w[ResourceKind.CORE]

    def test_equation1_weighted_average_identity(self, rng):
        u, x = _synthetic_samples(rng, n=300)
        model = CombinedServiceTimeModel().fit(u, x)
        manual = np.zeros(u.shape[0])
        for kind in RESOURCE_KINDS:
            manual += model.weights[kind] * model.regressors[kind].predict(
                u[:, kind.index]
            )
        manual /= sum(model.weights.values())
        np.testing.assert_allclose(model.predict(u), np.maximum(manual, 1e-9))

    def test_constant_contention_falls_back_to_equal_weights(self):
        u = np.tile([0.5, 10.0, 50.0, 20.0], (20, 1))
        x = np.full(20, 0.006)
        model = CombinedServiceTimeModel().fit(u, x)
        w = model.normalised_weights()
        for kind in RESOURCE_KINDS:
            assert w[kind] == pytest.approx(0.25)
        assert model.predict_one(
            ResourceVector(0.5, 10.0, 50.0, 20.0)
        ) == pytest.approx(0.006, rel=1e-6)

    def test_predictions_floored_positive(self, rng):
        # Wildly extrapolating inputs must not return negative times.
        u, x = _synthetic_samples(rng)
        model = CombinedServiceTimeModel().fit(u, x)
        extreme = np.array([[50.0, 5000.0, 1e5, 1e5]])
        assert model.predict(extreme)[0] > 0


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            CombinedServiceTimeModel().predict(np.zeros((1, 4)))

    def test_bad_shapes_rejected(self, rng):
        model = CombinedServiceTimeModel()
        with pytest.raises(ModelError):
            model.fit(np.zeros((10, 3)), np.ones(10))
        with pytest.raises(ModelError):
            model.fit(np.zeros((10, 4)), np.ones(9))

    def test_nonpositive_service_times_rejected(self):
        with pytest.raises(ModelError):
            CombinedServiceTimeModel().fit(np.random.rand(10, 4), np.zeros(10))

    def test_predict_bad_shape_rejected(self, rng):
        u, x = _synthetic_samples(rng, n=50)
        model = CombinedServiceTimeModel().fit(u, x)
        with pytest.raises(ModelError):
            model.predict(np.zeros((5, 3)))

    def test_normalised_weights_before_fit(self):
        with pytest.raises(NotFittedError):
            CombinedServiceTimeModel().normalised_weights()
