"""Tests for ResourceVector algebra (the substrate of Table III)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import RESOURCE_KINDS, ResourceKind, ResourceVector
from repro.errors import ConfigurationError

finite_nonneg = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
vectors = st.builds(
    ResourceVector,
    core=finite_nonneg,
    cache_mpki=finite_nonneg,
    disk_bw=finite_nonneg,
    net_bw=finite_nonneg,
)


class TestConstruction:
    def test_zero_vector(self):
        z = ResourceVector.zero()
        assert z.core == z.cache_mpki == z.disk_bw == z.net_bw == 0.0

    def test_field_order_matches_kind_index(self):
        v = ResourceVector(core=1.0, cache_mpki=2.0, disk_bw=3.0, net_bw=4.0)
        arr = v.as_array()
        for kind, expected in zip(RESOURCE_KINDS, [1.0, 2.0, 3.0, 4.0]):
            assert arr[kind.index] == expected
            assert v[kind] == expected

    def test_from_array_roundtrip(self):
        v = ResourceVector(0.5, 10.0, 50.0, 20.0)
        assert ResourceVector.from_array(v.as_array()) == v

    def test_from_array_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceVector.from_array([1.0, 2.0])

    def test_from_mapping_missing_keys_default_zero(self):
        v = ResourceVector.from_mapping({ResourceKind.CORE: 0.4})
        assert v.core == 0.4 and v.disk_bw == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceVector(core=-0.1)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceVector(core=float("nan"))

    def test_array_is_readonly(self):
        v = ResourceVector(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            v.as_array()[0] = 5.0


class TestAlgebra:
    @given(a=vectors, b=vectors)
    @settings(max_examples=100, deadline=None)
    def test_addition_componentwise(self, a, b):
        np.testing.assert_allclose(
            (a + b).as_array(), a.as_array() + b.as_array()
        )

    @given(a=vectors, b=vectors)
    @settings(max_examples=100, deadline=None)
    def test_minus_floors_at_zero(self, a, b):
        out = a.minus(b).as_array()
        assert np.all(out >= 0)
        np.testing.assert_allclose(out, np.maximum(a.as_array() - b.as_array(), 0))

    @given(a=vectors, b=vectors)
    @settings(max_examples=50, deadline=None)
    def test_add_then_minus_roundtrip(self, a, b):
        # Table III invariant: (U + U_ci) - U_ci == U.
        assert (a + b).minus(b).isclose(a, atol=1e-6)

    def test_scalar_multiplication(self):
        v = ResourceVector(1.0, 2.0, 3.0, 4.0)
        np.testing.assert_allclose((2 * v).as_array(), [2, 4, 6, 8])
        np.testing.assert_allclose((v * 0.5).as_array(), [0.5, 1, 1.5, 2])

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceVector(1.0, 1.0, 1.0, 1.0) * -1.0

    def test_clip_saturates_at_capacity(self):
        v = ResourceVector(2.0, 100.0, 500.0, 10.0)
        cap = ResourceVector(1.0, 60.0, 300.0, 125.0)
        clipped = v.clip(cap)
        np.testing.assert_allclose(clipped.as_array(), [1.0, 60.0, 300.0, 10.0])

    def test_sum_of_many(self):
        vs = [ResourceVector(core=0.1 * i) for i in range(5)]
        assert ResourceVector.sum(vs).core == pytest.approx(1.0)

    def test_empty_sum_is_zero(self):
        assert ResourceVector.sum([]) == ResourceVector.zero()


class TestEqualityHash:
    def test_equal_vectors_equal_hash(self):
        a = ResourceVector(0.3, 12.0, 40.0, 8.0)
        b = ResourceVector(0.3, 12.0, 40.0, 8.0)
        assert a == b and hash(a) == hash(b)

    def test_unequal(self):
        assert ResourceVector(core=0.1) != ResourceVector(core=0.2)

    def test_usable_in_sets(self):
        s = {ResourceVector.zero(), ResourceVector.zero(), ResourceVector(core=1.0)}
        assert len(s) == 2

    def test_norm_monotone(self):
        assert ResourceVector(core=2.0).norm() > ResourceVector(core=1.0).norm()

    def test_as_mapping_roundtrip(self):
        v = ResourceVector(0.5, 6.0, 70.0, 25.0)
        assert ResourceVector.from_mapping(v.as_mapping()) == v
