"""Tests for the cluster placement map and migration API."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.cluster.node import Node, NodeCapacity
from repro.cluster.placement import (
    least_loaded_placement,
    random_placement,
    round_robin_placement,
)
from repro.cluster.resources import ResourceVector
from repro.errors import PlacementError


class FakeResident:
    def __init__(self, name, **demand):
        self.name = name
        self.demand = ResourceVector(**demand)


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4)


class TestConstruction:
    def test_homogeneous_names_and_order(self, cluster):
        assert cluster.node_names == ["node-0", "node-1", "node-2", "node-3"]
        assert len(cluster) == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(PlacementError):
            Cluster([Node("a"), Node("a")])

    def test_empty_cluster_rejected(self):
        with pytest.raises(PlacementError):
            Cluster([])

    def test_nonpositive_homogeneous_rejected(self):
        with pytest.raises(PlacementError):
            Cluster.homogeneous(0)

    def test_node_lookup(self, cluster):
        assert cluster.node("node-2").name == "node-2"
        with pytest.raises(PlacementError):
            cluster.node("nope")

    def test_node_index_matches_order(self, cluster):
        for i, node in enumerate(cluster.nodes):
            assert cluster.node_index(node) == i

    def test_foreign_node_index_rejected(self, cluster):
        with pytest.raises(PlacementError):
            cluster.node_index(Node("foreign"))


class TestPlacement:
    def test_place_and_node_of(self, cluster):
        r = FakeResident("c0", core=0.1)
        cluster.place(r, "node-1")
        assert cluster.node_of(r).name == "node-1"
        assert cluster.node("node-1").hosts(r)

    def test_double_place_rejected(self, cluster):
        r = FakeResident("c0")
        cluster.place(r, "node-0")
        with pytest.raises(PlacementError):
            cluster.place(r, "node-1")

    def test_remove(self, cluster):
        r = FakeResident("c0")
        cluster.place(r, "node-0")
        cluster.remove(r)
        with pytest.raises(PlacementError):
            cluster.node_of(r)
        assert not cluster.node("node-0").hosts(r)

    def test_remove_unplaced_rejected(self, cluster):
        with pytest.raises(PlacementError):
            cluster.remove(FakeResident("ghost"))

    def test_residents_on(self, cluster):
        a, b = FakeResident("a"), FakeResident("b")
        cluster.place(a, "node-0")
        cluster.place(b, "node-0")
        assert set(r.name for r in cluster.residents_on("node-0")) == {"a", "b"}
        assert cluster.residents_on("node-1") == []


class TestMigration:
    def test_migrate_moves_resident(self, cluster):
        r = FakeResident("c0", core=0.2)
        cluster.place(r, "node-0")
        origin = cluster.migrate(r, "node-3")
        assert origin.name == "node-0"
        assert cluster.node_of(r).name == "node-3"
        assert cluster.migrations == 1

    def test_noop_migration_rejected(self, cluster):
        r = FakeResident("c0")
        cluster.place(r, "node-0")
        with pytest.raises(PlacementError):
            cluster.migrate(r, "node-0")

    def test_migrate_unplaced_rejected(self, cluster):
        with pytest.raises(PlacementError):
            cluster.migrate(FakeResident("ghost"), "node-1")

    def test_migration_updates_contention_both_sides(self, cluster):
        comp = FakeResident("comp", core=0.1)
        heavy = FakeResident("job", core=0.7)
        probe0 = FakeResident("p0")
        probe1 = FakeResident("p1")
        cluster.place(probe0, "node-0")
        cluster.place(probe1, "node-1")
        cluster.place(comp, "node-0")
        cluster.place(heavy, "node-0", MachineKind.BATCH)
        assert cluster.contention_for(probe0).core == pytest.approx(0.8)
        cluster.migrate(comp, "node-1")
        assert cluster.contention_for(probe0).core == pytest.approx(0.7)
        assert cluster.contention_for(probe1).core == pytest.approx(0.1)

    def test_migrate_rolls_back_when_destination_full(self):
        cluster = Cluster(
            [
                Node("n0", capacity=NodeCapacity(machine_slots=2)),
                Node("n1", capacity=NodeCapacity(machine_slots=1)),
            ]
        )
        blocker = FakeResident("blocker")
        cluster.place(blocker, "n1")
        r = FakeResident("c0")
        cluster.place(r, "n0")
        with pytest.raises(Exception):
            cluster.migrate(r, "n1")
        # Rolled back: still on n0.
        assert cluster.node_of(r).name == "n0"
        assert cluster.node("n0").hosts(r)

    def test_placement_indices_is_allocation_array(self, cluster):
        rs = [FakeResident(f"c{i}") for i in range(4)]
        for r, node in zip(rs, ["node-2", "node-0", "node-3", "node-2"]):
            cluster.place(r, node)
        assert cluster.placement_indices(rs) == [2, 0, 3, 2]


class TestPlacementPolicies:
    def _components(self, n):
        return [FakeResident(f"c{i}", core=0.1) for i in range(n)]

    def test_round_robin_cycles(self, cluster):
        nodes = round_robin_placement(cluster, self._components(6))
        assert [n.name for n in nodes] == [
            "node-0",
            "node-1",
            "node-2",
            "node-3",
            "node-0",
            "node-1",
        ]

    def test_random_placement_places_everything(self, cluster):
        rng = np.random.default_rng(0)
        comps = self._components(10)
        random_placement(cluster, comps, rng)
        for c in comps:
            assert cluster.node_of(c) is not None

    def test_least_loaded_prefers_idle_node(self, cluster):
        heavy = FakeResident("heavy", core=0.9)
        cluster.place(heavy, "node-0", MachineKind.BATCH)
        nodes = least_loaded_placement(cluster, self._components(3))
        assert "node-0" not in {n.name for n in nodes}

    def test_least_loaded_raises_when_full(self):
        cluster = Cluster(
            [Node("n0", capacity=NodeCapacity(machine_slots=1))]
        )
        least_loaded_placement(cluster, self._components(1))
        with pytest.raises(PlacementError):
            least_loaded_placement(cluster, self._components(1))
