"""Tests for machines, nodes, and contention accounting."""

import pytest

from repro.cluster.machine import Machine, MachineKind
from repro.cluster.node import Node, NodeCapacity
from repro.cluster.resources import ResourceVector
from repro.errors import CapacityError, PlacementError


class FakeResident:
    """Minimal Resident for tests."""

    def __init__(self, name, **demand):
        self.name = name
        self.demand = ResourceVector(**demand)


class TestMachine:
    def test_assign_release_roundtrip(self):
        m = Machine("vm-0")
        r = FakeResident("c0", core=0.1)
        m.assign(r)
        assert m.busy and m.occupant is r
        assert m.release() is r
        assert not m.busy

    def test_double_assign_rejected(self):
        m = Machine("vm-0")
        m.assign(FakeResident("a"))
        with pytest.raises(PlacementError):
            m.assign(FakeResident("b"))

    def test_release_idle_rejected(self):
        with pytest.raises(PlacementError):
            Machine("vm-0").release()

    def test_idle_demand_zero(self):
        assert Machine("vm-0").demand == ResourceVector.zero()

    def test_demand_tracks_occupant(self):
        m = Machine("vm-0")
        m.assign(FakeResident("c", core=0.25, disk_bw=10.0))
        assert m.demand.core == 0.25 and m.demand.disk_bw == 10.0

    def test_empty_name_rejected(self):
        with pytest.raises(PlacementError):
            Machine("")


class TestNodeCapacity:
    def test_defaults_match_paper_testbed(self):
        cap = NodeCapacity()
        assert cap.cores == 12  # two 6-core Xeon E5645
        assert cap.net_bw_mbps == pytest.approx(125.0)  # 1 GbE

    def test_capacity_vector_core_saturates_at_one(self):
        assert NodeCapacity().vector.core == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"disk_bw_mbps": -1.0},
            {"net_bw_mbps": 0.0},
            {"cache_mpki_cap": 0.0},
            {"machine_slots": 0},
        ],
    )
    def test_invalid_capacities_rejected(self, kwargs):
        with pytest.raises(CapacityError):
            NodeCapacity(**kwargs)


class TestNodeMachines:
    def test_add_and_remove_machine(self):
        node = Node("n0")
        node.add_machine("vm-a")
        assert node.free_slots == NodeCapacity().machine_slots - 1
        node.remove_machine("vm-a")
        assert node.free_slots == NodeCapacity().machine_slots

    def test_duplicate_machine_name_rejected(self):
        node = Node("n0")
        node.add_machine("vm-a")
        with pytest.raises(PlacementError):
            node.add_machine("vm-a")

    def test_slot_capacity_enforced(self):
        node = Node("n0", capacity=NodeCapacity(machine_slots=2))
        node.add_machine("a")
        node.add_machine("b")
        with pytest.raises(CapacityError):
            node.add_machine("c")

    def test_remove_busy_machine_rejected(self):
        node = Node("n0")
        node.host(FakeResident("c"), MachineKind.SERVICE)
        with pytest.raises(PlacementError):
            node.remove_machine(node.machines[0].name)

    def test_host_reuses_idle_machine_of_same_kind(self):
        node = Node("n0")
        r1 = FakeResident("c1")
        node.host(r1, MachineKind.SERVICE)
        node.evict(r1)
        node.host(FakeResident("c2"), MachineKind.SERVICE)
        assert len(node.machines) == 1

    def test_host_does_not_reuse_other_kind(self):
        node = Node("n0")
        r1 = FakeResident("c1")
        node.host(r1, MachineKind.SERVICE)
        node.evict(r1)
        node.host(FakeResident("j1"), MachineKind.BATCH)
        assert len(node.machines) == 2

    def test_evict_unknown_resident_rejected(self):
        with pytest.raises(PlacementError):
            Node("n0").evict(FakeResident("ghost"))

    def test_hosts_and_residents(self):
        node = Node("n0")
        r = FakeResident("c")
        node.host(r, MachineKind.SERVICE)
        assert node.hosts(r)
        assert list(node.residents()) == [r]


class TestContention:
    def test_contention_excludes_self(self):
        node = Node("n0")
        c = FakeResident("comp", core=0.2)
        j = FakeResident("job", core=0.5, disk_bw=50.0)
        node.host(c, MachineKind.SERVICE)
        node.host(j, MachineKind.BATCH)
        u = node.contention_for(c)
        assert u.core == pytest.approx(0.5)
        assert u.disk_bw == pytest.approx(50.0)

    def test_contention_includes_background(self):
        node = Node("n0", background=ResourceVector(core=0.05, cache_mpki=1.0))
        c = FakeResident("comp", core=0.2)
        node.host(c, MachineKind.SERVICE)
        u = node.contention_for(c)
        assert u.core == pytest.approx(0.05)
        assert u.cache_mpki == pytest.approx(1.0)

    def test_contention_saturates_at_capacity(self):
        node = Node("n0")
        c = FakeResident("comp")
        node.host(c, MachineKind.SERVICE)
        for i in range(4):
            node.host(FakeResident(f"j{i}", core=0.5), MachineKind.BATCH)
        assert node.contention_for(c).core == pytest.approx(1.0)

    def test_contention_for_none_is_arrival_view(self):
        node = Node("n0")
        node.host(FakeResident("j", core=0.4), MachineKind.BATCH)
        assert node.contention_for(None).core == pytest.approx(0.4)

    def test_total_demand_with_exclude(self):
        node = Node("n0")
        a = FakeResident("a", core=0.3)
        b = FakeResident("b", core=0.2)
        node.host(a, MachineKind.BATCH)
        node.host(b, MachineKind.BATCH)
        assert node.total_demand(exclude=a).core == pytest.approx(0.2)

    def test_utilisation_capped_at_one(self):
        node = Node("n0")
        for i in range(3):
            node.host(FakeResident(f"j{i}", core=0.6), MachineKind.BATCH)
        assert node.utilisation() == 1.0

    def test_empty_node_name_rejected(self):
        with pytest.raises(PlacementError):
            Node("")
