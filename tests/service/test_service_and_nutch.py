"""Tests for OnlineService, deployment, and the Nutch factory."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeCapacity
from repro.errors import TopologyError
from repro.service.component import ComponentClass
from repro.service.nutch import NutchConfig, build_nutch_service
from repro.units import ms


@pytest.fixture
def service():
    return build_nutch_service()


class TestNutchTopology:
    def test_three_stages_in_paper_order(self, service):
        names = [s.name for s in service.topology.stages]
        assert names == ["segmenting", "searching", "aggregating"]

    def test_default_100_searching_components(self, service):
        searching = service.components_of_class(ComponentClass.SEARCHING)
        assert len(searching) == 100  # paper §VI-C: "100 VMs"

    def test_search_stage_shape(self, service):
        stage = service.topology.stage("searching")
        assert stage.n_groups == 20
        assert all(g.n_replicas == 5 for g in stage.groups)

    def test_total_components(self, service):
        assert service.n_components == 4 + 100 + 4

    def test_custom_config(self):
        svc = build_nutch_service(
            NutchConfig(n_search_groups=3, replicas_per_group=2)
        )
        assert len(svc.components_of_class(ComponentClass.SEARCHING)) == 6

    def test_base_means_match_config(self, service):
        cfg = NutchConfig()
        rep = service.representative(ComponentClass.SEARCHING)
        assert rep.base_mean == pytest.approx(cfg.search_mean_s)

    def test_component_demands_nonzero(self, service):
        for c in service.components:
            assert c.demand.norm() > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(TopologyError):
            NutchConfig(n_search_groups=0)
        with pytest.raises(TopologyError):
            NutchConfig(search_mean_s=-ms(1))
        with pytest.raises(TopologyError):
            NutchConfig(search_scv=0.0)


class TestClassViews:
    def test_classes_in_stage_order(self, service):
        assert service.classes() == [
            ComponentClass.SEGMENTING,
            ComponentClass.SEARCHING,
            ComponentClass.AGGREGATING,
        ]

    def test_representative_one_per_class(self, service):
        # §VI-D: only one component per homogeneous class is profiled.
        for cls in service.classes():
            rep = service.representative(cls)
            assert rep.cls is cls

    def test_representative_missing_class_rejected(self, service):
        with pytest.raises(TopologyError):
            service.representative(ComponentClass.GENERIC)


class TestDeployment:
    def _cluster(self, n=30):
        # Generous slots so 108 components fit on 30 nodes.
        return Cluster.homogeneous(n, NodeCapacity(machine_slots=16))

    def test_round_robin_deploys_all(self, service):
        cluster = self._cluster()
        service.deploy(cluster, "round_robin")
        for c in service.components:
            assert cluster.node_of(c) is not None

    def test_round_robin_balanced(self, service):
        cluster = self._cluster()
        service.deploy(cluster, "round_robin")
        counts = [len(cluster.residents_on(n)) for n in cluster]
        assert max(counts) - min(counts) <= 1

    def test_random_deploy_needs_rng(self, service):
        with pytest.raises(TopologyError):
            service.deploy(self._cluster(), "random")

    def test_random_deploy(self, service):
        cluster = self._cluster()
        service.deploy(cluster, "random", rng=np.random.default_rng(0))
        assert sum(len(cluster.residents_on(n)) for n in cluster) == 108

    def test_least_loaded_deploy(self, service):
        cluster = self._cluster()
        service.deploy(cluster, "least_loaded")
        assert sum(len(cluster.residents_on(n)) for n in cluster) == 108

    def test_unknown_strategy_rejected(self, service):
        with pytest.raises(TopologyError):
            service.deploy(self._cluster(), "galaxy-brain")

    def test_empty_service_name_rejected(self, service):
        from repro.service.service import OnlineService

        with pytest.raises(TopologyError):
            OnlineService("", service.topology)
