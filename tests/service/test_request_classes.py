"""Request classes: declaration, resolution, and the degenerate-case
contract (`ServiceTopology.resolve_classes`)."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.service.component import Component, ComponentClass
from repro.service.topology import (
    ReplicaGroup,
    RequestClass,
    ServiceTopology,
    Stage,
)
from repro.simcore.distributions import LogNormal
from repro.units import ms


def _comp(name):
    return Component(
        name=name, cls=ComponentClass.GENERIC,
        base_service=LogNormal(ms(2.0), 0.5),
    )


def _topology():
    """front -> {a (mandatory) || b (p=0.5)} -> back."""
    return ServiceTopology(
        [
            Stage("front", [ReplicaGroup("front-g", [_comp("f0")])]),
            Stage(
                "mid",
                [
                    ReplicaGroup("a-g", [_comp("a0"), _comp("a1")]),
                    ReplicaGroup(
                        "b-g", [_comp("b0")], participation=0.5
                    ),
                ],
                predecessors=("front",),
            ),
            Stage(
                "back",
                [ReplicaGroup("back-g", [_comp("k0")])],
                predecessors=("mid",),
            ),
        ]
    )


class TestRequestClassValidation:
    def test_fields_validated(self):
        with pytest.raises(TopologyError):
            RequestClass("")
        with pytest.raises(TopologyError):
            RequestClass("x", weight=-0.1)
        with pytest.raises(TopologyError):
            RequestClass("x", service_scale=0.0)
        with pytest.raises(TopologyError):
            RequestClass("x", participation={"g": 1.5})

    def test_defaults_are_the_homogeneous_request(self):
        c = RequestClass("plain")
        assert c.weight == 1.0
        assert c.service_scale == 1.0
        assert dict(c.participation) == {}


class TestResolveClasses:
    def test_no_classes_is_none(self):
        assert _topology().resolve_classes(()) is None
        assert _topology().resolve_classes(None) is None

    def test_single_degenerate_class_is_none(self):
        """One class with unit scale and no overrides IS the
        homogeneous population — callers take the pre-class path."""
        assert _topology().resolve_classes((RequestClass("only"),)) is None

    def test_single_restricting_class_resolves(self):
        mix = _topology().resolve_classes(
            (RequestClass("only", participation={"b-g": 0.0}),)
        )
        assert mix is not None
        assert not mix.multi_class
        assert mix.group_participation[0].tolist() == [1.0, 1.0, 0.0, 1.0]

    def test_single_rescaling_class_resolves(self):
        mix = _topology().resolve_classes(
            (RequestClass("only", service_scale=2.0),)
        )
        assert mix is not None
        assert mix.service_scales.tolist() == [2.0]

    def test_weights_normalised_and_overrides_applied(self):
        mix = _topology().resolve_classes(
            (
                RequestClass("big", weight=3.0),
                RequestClass(
                    "small", weight=1.0, service_scale=0.5,
                    participation={"b-g": 1.0, "a-g": 0.0},
                ),
            )
        )
        assert mix.names == ("big", "small")
        assert mix.weights.tolist() == [0.75, 0.25]
        # Columns are stage-major group order: front-g, a-g, b-g, back-g.
        assert mix.group_names == ("front-g", "a-g", "b-g", "back-g")
        assert mix.group_participation[0].tolist() == [1.0, 1.0, 0.5, 1.0]
        assert mix.group_participation[1].tolist() == [1.0, 0.0, 1.0, 1.0]
        # Stage participation is the max over the stage's groups.
        assert mix.stage_participation[0].tolist() == [1.0, 1.0, 1.0]
        assert mix.stage_participation[1].tolist() == [1.0, 1.0, 1.0]

    def test_stage_participation_zero_when_all_groups_skipped(self):
        mix = _topology().resolve_classes(
            (
                RequestClass("full"),
                RequestClass(
                    "thin", participation={"a-g": 0.0, "b-g": 0.0}
                ),
            )
        )
        assert mix.stage_participation[1].tolist() == [1.0, 0.0, 1.0]

    def test_expected_group_participation_is_mix_weighted(self):
        mix = _topology().resolve_classes(
            (
                RequestClass("x", weight=0.5, participation={"a-g": 0.0}),
                RequestClass("y", weight=0.5),
            )
        )
        np.testing.assert_allclose(
            mix.expected_group_participation(), [1.0, 0.5, 0.5, 1.0]
        )

    def test_class_of_maps_uniforms_by_weight(self):
        mix = _topology().resolve_classes(
            (
                RequestClass("x", weight=0.25, service_scale=2.0),
                RequestClass("y", weight=0.75),
            )
        )
        u = np.array([0.0, 0.2499, 0.25, 0.9999])
        assert mix.class_of(u).tolist() == [0, 0, 1, 1]
        # The top edge of [0, 1) still maps to the last class.
        assert mix.class_of(np.array([1.0])).tolist() == [1]

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(TopologyError, match="duplicate"):
            _topology().resolve_classes(
                (RequestClass("x"), RequestClass("x"))
            )

    def test_unknown_group_named(self):
        with pytest.raises(TopologyError, match="nope"):
            _topology().resolve_classes(
                (RequestClass("x", participation={"nope": 0.5}),)
            )

    def test_describe_lists_only_overrides(self):
        mix = _topology().resolve_classes(
            (
                RequestClass("x", weight=1.0, participation={"b-g": 0.0}),
                RequestClass("y", weight=3.0, service_scale=0.5),
            )
        )
        line = mix.describe()
        assert "x(w=0.25, x1) [b-g=0]" in line
        assert "y(w=0.75, x0.5)" in line
        # y keeps the defaults, so no override bracket follows it.
        assert "y(w=0.75, x0.5) [" not in line


class TestMixReweighting:
    CLASSES = (
        RequestClass("x", weight=0.5, participation={"b-g": 0.0}),
        RequestClass("y", weight=0.5, service_scale=2.0),
    )

    def test_mix_overrides_weights(self):
        mix = _topology().resolve_classes(self.CLASSES, {"x": 3.0, "y": 1.0})
        assert mix.weights.tolist() == [0.75, 0.25]

    def test_zero_weight_drops_class(self):
        mix = _topology().resolve_classes(self.CLASSES, {"y": 0.0})
        assert mix is not None and mix.names == ("x",)

    def test_dropping_to_pure_degenerate_returns_none(self):
        classes = (RequestClass("plain"), RequestClass("heavy", service_scale=2.0))
        assert _topology().resolve_classes(classes, {"heavy": 0.0}) is None

    def test_all_zero_mix_rejected(self):
        with pytest.raises(TopologyError, match="zero weight"):
            _topology().resolve_classes(self.CLASSES, {"x": 0.0, "y": 0.0})

    def test_unknown_mix_name_rejected(self):
        with pytest.raises(TopologyError, match="unknown classes"):
            _topology().resolve_classes(self.CLASSES, {"z": 1.0})

    def test_negative_mix_weight_rejected(self):
        with pytest.raises(TopologyError, match=">= 0"):
            _topology().resolve_classes(self.CLASSES, {"x": -1.0})
