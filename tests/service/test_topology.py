"""Tests for service topology construction and invariants."""

import pytest

from repro.errors import TopologyError
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.simcore.distributions import Exponential
from repro.units import ms


def _comp(name, cls=ComponentClass.GENERIC, mean=ms(5)):
    return Component(name=name, cls=cls, base_service=Exponential(mean))


def _simple_topology():
    return ServiceTopology(
        [
            Stage("front", [ReplicaGroup("f-g0", [_comp("f0"), _comp("f1")])]),
            Stage(
                "mid",
                [
                    ReplicaGroup("m-g0", [_comp("m00"), _comp("m01")]),
                    ReplicaGroup("m-g1", [_comp("m10"), _comp("m11")]),
                ],
            ),
            Stage("back", [ReplicaGroup("b-g0", [_comp("b0")])]),
        ]
    )


class TestValidation:
    def test_empty_stages_rejected(self):
        with pytest.raises(TopologyError):
            ServiceTopology([])

    def test_empty_group_rejected(self):
        with pytest.raises(TopologyError):
            ReplicaGroup("g", [])

    def test_stage_without_groups_rejected(self):
        with pytest.raises(TopologyError):
            Stage("s", [])

    def test_duplicate_stage_names_rejected(self):
        stage = lambda n: Stage(n, [ReplicaGroup(f"{n}-g", [_comp(f"{n}-c")])])
        with pytest.raises(TopologyError):
            ServiceTopology([stage("a"), Stage("a", [ReplicaGroup("x", [_comp("y")])])])

    def test_duplicate_component_names_rejected(self):
        with pytest.raises(TopologyError):
            ServiceTopology(
                [
                    Stage("a", [ReplicaGroup("g0", [_comp("dup")])]),
                    Stage("b", [ReplicaGroup("g1", [_comp("dup")])]),
                ]
            )

    def test_component_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            _comp("")

    def test_component_zero_mean_rejected(self):
        from repro.simcore.distributions import Deterministic

        with pytest.raises(TopologyError):
            Component(
                name="c",
                cls=ComponentClass.GENERIC,
                base_service=Deterministic(0.0),
            )


class TestCoordinates:
    def test_positions_assigned(self):
        topo = _simple_topology()
        m11 = topo.component("m11")
        assert (m11.stage_index, m11.group_index, m11.replica_index) == (1, 1, 1)

    def test_component_order_stage_major(self):
        topo = _simple_topology()
        assert [c.name for c in topo.components] == [
            "f0",
            "f1",
            "m00",
            "m01",
            "m10",
            "m11",
            "b0",
        ]

    def test_component_index_matches_order(self):
        topo = _simple_topology()
        for i, c in enumerate(topo.components):
            assert topo.component_index(c) == i

    def test_counts(self):
        topo = _simple_topology()
        assert topo.n_stages == 3
        assert topo.n_components == 7
        assert topo.stage("mid").n_groups == 2
        assert topo.stage("mid").max_replicas == 2

    def test_lookup_errors(self):
        topo = _simple_topology()
        with pytest.raises(TopologyError):
            topo.stage("nope")
        with pytest.raises(TopologyError):
            topo.component("nope")
        with pytest.raises(TopologyError):
            topo.component_index(_comp("alien"))


class TestGraphView:
    def test_graph_is_dag_with_sentinels(self):
        import networkx as nx

        g = _simple_topology().to_graph()
        assert nx.is_directed_acyclic_graph(g)
        assert "__entry__" in g and "__exit__" in g
        # Every component lies on an entry→exit path.
        for c in _simple_topology().components:
            assert nx.has_path(g, "__entry__", c.name)
            assert nx.has_path(g, c.name, "__exit__")

    def test_stage_layering(self):
        g = _simple_topology().to_graph()
        # front components feed every mid component.
        assert g.has_edge("f0", "m00") and g.has_edge("f1", "m11")
        assert not g.has_edge("f0", "b0")

    def test_describe_mentions_all_stages(self):
        out = _simple_topology().describe()
        assert "front" in out and "mid" in out and "back" in out
