"""DAG topology model: predecessor validation, derived indices,
chain degeneracy, and the graph views."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.service.component import Component, ComponentClass
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.simcore.distributions import Exponential
from repro.units import ms


def _comp(name, cls=ComponentClass.GENERIC, mean=ms(5)):
    return Component(name=name, cls=cls, base_service=Exponential(mean))


def _stage(name, preds=None, participation=1.0, n=1):
    return Stage(
        name,
        [
            ReplicaGroup(
                f"{name}-g0",
                [_comp(f"{name}-r{r}") for r in range(n)],
                participation=participation,
            )
        ],
        predecessors=preds,
    )


def _diamond():
    """a -> {b, c} -> d, plus the a -> d skip edge."""
    return ServiceTopology(
        [
            _stage("a"),
            _stage("b", preds=("a",)),
            _stage("c", preds=("a",)),
            _stage("d", preds=("a", "b", "c")),
        ]
    )


class TestValidation:
    def test_unknown_predecessor_rejected(self):
        with pytest.raises(TopologyError, match="unknown predecessor"):
            ServiceTopology([_stage("a"), _stage("b", preds=("zzz",))])

    def test_later_predecessor_rejected(self):
        """Definition order is the topological order — forward (or
        self-) references would allow cycles."""
        with pytest.raises(TopologyError, match="earlier"):
            ServiceTopology(
                [_stage("a", preds=("b",)), _stage("b", preds=())]
            )

    def test_self_predecessor_rejected(self):
        with pytest.raises(TopologyError, match="cannot precede itself"):
            _stage("a", preds=("a",))

    def test_duplicate_predecessors_rejected(self):
        with pytest.raises(TopologyError, match="duplicate predecessors"):
            ServiceTopology(
                [_stage("a"), _stage("b", preds=("a", "a"))]
            )

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_participation_bounds(self, p):
        with pytest.raises(TopologyError, match="participation"):
            ReplicaGroup("g", [_comp("c")], participation=p)

    def test_participation_one_is_not_optional(self):
        assert not ReplicaGroup("g", [_comp("c")]).optional
        assert ReplicaGroup(
            "h", [_comp("d")], participation=0.5
        ).optional


class TestDerivedIndices:
    def test_chain_defaults(self):
        topo = ServiceTopology([_stage("a"), _stage("b"), _stage("c")])
        assert topo.predecessor_indices == ((), (0,), (1,))
        assert topo.successor_indices == ((1,), (2,), ())
        assert topo.exit_indices == (2,)
        assert topo.is_chain

    def test_diamond_indices(self):
        topo = _diamond()
        assert topo.predecessor_indices == ((), (0,), (0,), (0, 1, 2))
        assert topo.successor_indices == ((1, 2, 3), (3,), (3,), ())
        assert topo.exit_indices == (3,)
        assert not topo.is_chain

    def test_parallel_entry_and_multiple_exits(self):
        topo = ServiceTopology(
            [_stage("a"), _stage("side", preds=()), _stage("z", preds=("a",))]
        )
        assert topo.predecessor_indices == ((), (), (0,))
        assert topo.exit_indices == (1, 2)
        assert not topo.is_chain

    def test_optional_group_breaks_chain(self):
        topo = ServiceTopology(
            [_stage("a"), _stage("b", participation=0.5)]
        )
        assert topo.has_optional_groups
        assert not topo.is_chain

    def test_explicit_chain_predecessors_still_chain(self):
        topo = ServiceTopology(
            [_stage("a"), _stage("b", preds=("a",))]
        )
        assert topo.is_chain

    def test_component_order_stays_stage_major(self):
        topo = _diamond()
        assert [c.name for c in topo.components] == [
            "a-r0", "b-r0", "c-r0", "d-r0"
        ]
        for i, c in enumerate(topo.components):
            assert topo.component_index(c) == i


class TestGraphViews:
    def test_stage_graph_edges(self):
        g = _diamond().stage_graph
        assert set(g.edges) == {
            ("a", "b"), ("a", "c"), ("a", "d"), ("b", "d"), ("c", "d")
        }
        assert nx.is_directed_acyclic_graph(g)

    def test_component_graph_follows_dag(self):
        topo = _diamond()
        g = topo.to_graph()
        assert nx.is_directed_acyclic_graph(g)
        assert g.has_edge("__entry__", "a-r0")
        assert g.has_edge("a-r0", "b-r0") and g.has_edge("a-r0", "c-r0")
        assert g.has_edge("a-r0", "d-r0")  # the skip edge survives
        assert g.has_edge("d-r0", "__exit__")
        assert not g.has_edge("b-r0", "c-r0")

    def test_graph_carries_participation(self):
        topo = ServiceTopology(
            [_stage("a"), _stage("b", participation=0.25)]
        )
        g = topo.to_graph()
        assert g.nodes["b-r0"]["participation"] == 0.25
        assert g.nodes["a-r0"]["participation"] == 1.0

    def test_describe_shapes(self):
        chain = ServiceTopology([_stage("a"), _stage("b")])
        assert " -> " in chain.describe()
        dag = _diamond()
        out = dag.describe()
        assert "<- a,b,c" in out and "entry" in out
        opt = ServiceTopology([_stage("a"), _stage("b", participation=0.5)])
        assert "1opt" in opt.describe()
