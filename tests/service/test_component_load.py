"""Tests for the load-dependent component demand model."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import TopologyError
from repro.service.component import Component, ComponentClass
from repro.simcore.distributions import Exponential
from repro.units import ms


def _comp(**kwargs):
    return Component(
        name="c",
        cls=ComponentClass.SEARCHING,
        base_service=Exponential(ms(4)),
        demand=ResourceVector(core=0.04, cache_mpki=1.0, disk_bw=4.0, net_bw=1.5),
        **kwargs,
    )


class TestLoadScaling:
    def test_reference_load_keeps_base_demand(self):
        c = _comp()
        assert c.demand == c.base_demand
        assert c.demand_scale == pytest.approx(1.0)

    def test_double_load_scales_demand_up(self):
        c = _comp()
        c.set_load(2 * c.reference_rps)
        # scale = idle + (1-idle)*2 = 0.4 + 1.2 = 1.6
        assert c.demand_scale == pytest.approx(1.6)
        assert c.demand.core == pytest.approx(0.04 * 1.6)

    def test_idle_floor(self):
        c = _comp()
        c.set_load(0.0)
        assert c.demand_scale == pytest.approx(c.idle_fraction)

    def test_cap_at_max_scale(self):
        c = _comp()
        c.set_load(1000 * c.reference_rps)
        assert c.demand_scale == pytest.approx(c.max_demand_scale)

    def test_redundancy_load_feedback(self):
        """k executed copies -> ~k x demand (the RED cost mechanism)."""
        basic, red3 = _comp(), _comp()
        basic.set_load(10.0)
        red3.set_load(30.0)
        assert red3.demand.core > 2 * basic.demand.core

    def test_negative_load_rejected(self):
        with pytest.raises(TopologyError):
            _comp().set_load(-1.0)

    def test_invalid_load_model_rejected(self):
        with pytest.raises(TopologyError):
            _comp(reference_rps=0.0)
        with pytest.raises(TopologyError):
            _comp(idle_fraction=1.5)
        with pytest.raises(TopologyError):
            _comp(max_demand_scale=0.5)

    def test_zero_base_demand_safe(self):
        c = Component(
            name="z", cls=ComponentClass.GENERIC, base_service=Exponential(ms(1))
        )
        c.set_load(50.0)
        assert c.demand == ResourceVector.zero()
        assert c.demand_scale == 1.0
