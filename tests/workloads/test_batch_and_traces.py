"""Tests for batch jobs and synthetic traces."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import gb, mb, minutes
from repro.workloads.batch import BatchJob, BatchJobSpec
from repro.workloads.traces import (
    GOOGLE_DURATION_SIGMA,
    GOOGLE_MEDIAN_DURATION_S,
    JobRecord,
    SyntheticTraceConfig,
    generate_trace,
    trace_stats,
)


class TestBatchJobSpec:
    def test_of_builds_from_registry_name(self):
        spec = BatchJobSpec.of("spark.sort", gb(1))
        assert spec.profile.name == "spark.sort"

    def test_demand_matches_profile(self):
        spec = BatchJobSpec.of("hadoop.bayes", gb(2))
        assert spec.demand == spec.profile.demand(gb(2))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(WorkloadError):
            BatchJobSpec.of("spark.sort", 0.0)


class TestBatchJob:
    def _job(self, arrival=10.0, duration=60.0):
        return BatchJob(
            spec=BatchJobSpec.of("spark.sort", mb(500)),
            arrival_time=arrival,
            duration=duration,
        )

    def test_departure_time(self):
        assert self._job(10.0, 60.0).departure_time == 70.0

    def test_active_at_window(self):
        job = self._job(10.0, 60.0)
        assert not job.active_at(9.9)
        assert job.active_at(10.0)
        assert job.active_at(69.9)
        assert not job.active_at(70.0)

    def test_demand_cached_and_constant(self):
        job = self._job()
        assert job.demand is job.demand  # same object, computed once

    def test_auto_names_unique(self):
        names = {self._job().name for _ in range(10)}
        assert len(names) == 10

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(WorkloadError):
            self._job(duration=0.0)


class TestJobRecord:
    def test_is_small_threshold_1gb(self):
        small = JobRecord("spark.sort", gb(1) - 1, 0.0, 10.0)
        large = JobRecord("spark.sort", gb(1), 0.0, 10.0)
        assert small.is_small and not large.is_small

    def test_invalid_record_rejected(self):
        with pytest.raises(WorkloadError):
            JobRecord("spark.sort", mb(1), -1.0, 10.0)


class TestTraceCalibration:
    """The trace must reproduce the Google marginals quoted in §I."""

    @pytest.fixture(scope="class")
    def trace(self):
        cfg = SyntheticTraceConfig(horizon_s=20_000.0, jobs_per_s=0.5)
        return generate_trace(cfg, np.random.default_rng(42))

    def test_sigma_calibration_closed_form(self):
        # P(duration <= 3h) = 0.94 pins sigma.
        from repro.stats import norm_cdf

        z = np.log(minutes(180) / GOOGLE_MEDIAN_DURATION_S) / GOOGLE_DURATION_SIGMA
        assert norm_cdf(z) == pytest.approx(0.94, abs=1e-9)

    def test_sigma_pinned_to_six_decimals(self):
        # Regression pin: the self-contained Φ⁻¹ must keep reproducing
        # the SciPy-era constant sigma = ln(18) / z_{0.94}.
        assert round(GOOGLE_DURATION_SIGMA, 6) == 1.859031

    def test_half_complete_within_10min(self, trace):
        stats = trace_stats(trace)
        assert stats.frac_le_10min == pytest.approx(0.50, abs=0.03)

    def test_94pct_within_3h(self, trace):
        stats = trace_stats(trace)
        assert stats.frac_le_3h == pytest.approx(0.94, abs=0.02)

    def test_over_90pct_small_jobs(self, trace):
        stats = trace_stats(trace)
        assert stats.frac_small == pytest.approx(0.90, abs=0.02)

    def test_arrivals_sorted_within_horizon(self, trace):
        times = [r.arrival_time for r in trace]
        assert times == sorted(times)
        assert all(0 <= t <= 20_000.0 for t in times)

    def test_poisson_count(self, trace):
        # ~10k expected arrivals; 5 sigma tolerance.
        assert len(trace) == pytest.approx(10_000, abs=500)

    def test_render_mentions_marginals(self, trace):
        out = trace_stats(trace).render()
        assert "small" in out and "<=10min" in out

    def test_profile_duration_mode(self):
        cfg = SyntheticTraceConfig(
            horizon_s=2_000.0, jobs_per_s=0.1, duration_mode="profile"
        )
        trace = generate_trace(cfg, np.random.default_rng(0))
        stats = trace_stats(trace)
        # Profile jobs are seconds-to-minutes, far below the Google median.
        assert stats.mean_duration_s < GOOGLE_MEDIAN_DURATION_S

    def test_mix_restricts_profiles(self):
        cfg = SyntheticTraceConfig(
            horizon_s=2_000.0, jobs_per_s=0.1, mix={"spark.sort": 1.0}
        )
        trace = generate_trace(cfg, np.random.default_rng(0))
        assert {r.profile_name for r in trace} == {"spark.sort"}

    def test_empty_trace_stats_rejected(self):
        with pytest.raises(WorkloadError):
            trace_stats([])

    def test_unknown_mix_profile_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticTraceConfig(mix={"nope": 1.0})

    def test_invalid_duration_mode_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticTraceConfig(duration_mode="uniform")


class TestArrivalProfiles:
    """Trace-driven arrival-rate multipliers (`--trace-profile`)."""

    def _mult(self, profile, n=12):
        from repro.workloads.traces import arrival_rate_multipliers

        return arrival_rate_multipliers(profile, n)

    def test_builtin_names_registered(self):
        from repro.workloads.traces import arrival_profile_names

        assert {"stationary", "diurnal", "burst", "flash-crowd"} <= set(
            arrival_profile_names()
        )

    def test_stationary_is_exactly_one(self):
        """The contract golden pins rest on: stationary multiplies the
        configured rate by exactly 1.0, bit-identical to no profile."""
        assert (self._mult("stationary") == 1.0).all()

    def test_burst_is_a_middle_plateau(self):
        m = self._mult("burst", 12)
        np.testing.assert_array_equal(m[:4], 1.0)
        np.testing.assert_array_equal(m[4:8], 2.0)
        np.testing.assert_array_equal(m[8:], 1.0)

    def test_diurnal_swings_around_one(self):
        m = self._mult("diurnal", 24)
        assert m.min() < 0.7 and m.max() > 1.3
        assert np.mean(m) == pytest.approx(1.0, abs=1e-9)

    def test_flash_crowd_onsets_then_decays(self):
        m = self._mult("flash-crowd", 20)
        onset = 8  # 40 % of the run
        np.testing.assert_array_equal(m[:onset], 1.0)
        assert m[onset] == pytest.approx(3.0)
        assert (np.diff(m[onset:]) < 0).all()
        assert m[-1] > 1.0  # long cool-down tail never undershoots

    def test_all_profiles_positive_and_deterministic(self):
        from repro.workloads.traces import arrival_profile_names

        for name in arrival_profile_names():
            a, b = self._mult(name, 9), self._mult(name, 9)
            np.testing.assert_array_equal(a, b)
            assert (a > 0).all() and np.isfinite(a).all()

    def test_unknown_profile_and_bad_intervals_rejected(self):
        with pytest.raises(WorkloadError, match="unknown arrival profile"):
            self._mult("full-moon")
        with pytest.raises(WorkloadError, match="n_intervals"):
            self._mult("stationary", 0)

    def test_registration_guardrails(self):
        from repro.workloads.traces import (
            _ARRIVAL_PROFILES,
            arrival_rate_multipliers,
            register_arrival_profile,
        )

        with pytest.raises(WorkloadError, match="non-empty"):
            register_arrival_profile("", lambda i, n: 1.0)
        with pytest.raises(WorkloadError, match="callable"):
            register_arrival_profile("notfn", "nope")
        with pytest.raises(WorkloadError, match="already registered"):
            register_arrival_profile("stationary", lambda i, n: 1.0)
        register_arrival_profile("cli-test-ramp", lambda i, n: 1.0 + i)
        try:
            np.testing.assert_array_equal(
                arrival_rate_multipliers("cli-test-ramp", 3), [1.0, 2.0, 3.0]
            )
        finally:
            del _ARRIVAL_PROFILES["cli-test-ramp"]

    def test_non_positive_profile_output_rejected(self):
        from repro.workloads.traces import (
            _ARRIVAL_PROFILES,
            arrival_rate_multipliers,
            register_arrival_profile,
        )

        register_arrival_profile("cli-test-zero", lambda i, n: 0.0)
        try:
            with pytest.raises(WorkloadError, match="non-positive"):
                arrival_rate_multipliers("cli-test-zero", 2)
        finally:
            del _ARRIVAL_PROFILES["cli-test-zero"]
