"""Tests for the workload demand profiles and their paper calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceKind
from repro.errors import WorkloadError
from repro.units import gb, mb
from repro.workloads.profiles import (
    ALL_PROFILES,
    HADOOP_PROFILES,
    SPARK_PROFILES,
    Framework,
    SaturatingCurve,
    Semantics,
    get_profile,
)


class TestSaturatingCurve:
    def test_zero_at_zero(self):
        assert SaturatingCurve(1.0, 100.0)(0.0) == 0.0

    def test_half_at_half_size(self):
        curve = SaturatingCurve(0.8, 500.0)
        assert curve(500.0) == pytest.approx(0.4)

    def test_asymptote(self):
        curve = SaturatingCurve(0.9, 100.0)
        assert curve(1e9) == pytest.approx(0.9, rel=1e-3)

    @given(
        s1=st.floats(min_value=0.0, max_value=1e5),
        s2=st.floats(min_value=0.0, max_value=1e5),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, s1, s2):
        curve = SaturatingCurve(1.0, 300.0)
        lo, hi = sorted([s1, s2])
        assert curve(lo) <= curve(hi) + 1e-12

    def test_vectorised(self):
        curve = SaturatingCurve(1.0, 100.0)
        out = curve(np.array([0.0, 100.0, 300.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 0.75])

    def test_negative_size_rejected(self):
        with pytest.raises(WorkloadError):
            SaturatingCurve(1.0, 100.0)(-5.0)

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            SaturatingCurve(-0.1, 100.0)
        with pytest.raises(WorkloadError):
            SaturatingCurve(1.0, 0.0)


class TestPaperCalibration:
    """WordCount CPU anchors from §II-B: 31 %/61 %/79 % at 0.5/2/8 GB."""

    @pytest.mark.parametrize(
        "size_mb,expected",
        [(mb(500), 0.31), (gb(2), 0.61), (gb(8), 0.79)],
    )
    def test_wordcount_cpu_anchor(self, size_mb, expected):
        profile = get_profile("hadoop.wordcount")
        u = profile.curves[ResourceKind.CORE](size_mb)
        assert u == pytest.approx(expected, abs=0.035)

    def test_all_six_paper_workloads_present(self):
        assert set(ALL_PROFILES) == {
            "hadoop.bayes",
            "hadoop.wordcount",
            "hadoop.pageindex",
            "spark.bayes",
            "spark.wordcount",
            "spark.sort",
        }

    def test_framework_split(self):
        assert all(p.framework is Framework.HADOOP for p in HADOOP_PROFILES.values())
        assert all(p.framework is Framework.SPARK for p in SPARK_PROFILES.values())

    def test_software_stack_changes_bottleneck(self):
        # §II-B: "Hadoop Bayes is a CPU-intensive workload but Spark
        # Bayes is an I/O-intensive workload".
        assert get_profile("hadoop.bayes").semantics is Semantics.CPU_INTENSIVE
        assert get_profile("spark.bayes").semantics is Semantics.IO_INTENSIVE

    def test_sort_is_io_intensive(self):
        assert get_profile("spark.sort").semantics is Semantics.IO_INTENSIVE

    def test_pageindex_balanced(self):
        assert get_profile("hadoop.pageindex").semantics is Semantics.BALANCED

    def test_dominant_resource_consistent_with_semantics(self):
        for profile in ALL_PROFILES.values():
            dom = profile.dominant_resource
            if profile.semantics is Semantics.CPU_INTENSIVE:
                assert dom is ResourceKind.CORE
            elif profile.semantics is Semantics.IO_INTENSIVE:
                assert dom in (ResourceKind.DISK_BW, ResourceKind.NET_BW)


class TestDemandAndDuration:
    def test_demand_grows_with_size(self):
        p = get_profile("spark.sort")
        small, large = p.demand(mb(100)), p.demand(gb(4))
        assert large.disk_bw > small.disk_bw
        assert large.core > small.core

    def test_durations_seconds_to_minutes(self):
        # §VI-A: jobs run "from a few seconds to several minutes".
        for p in ALL_PROFILES.values():
            assert 1.0 <= p.mean_duration(mb(50)) <= 120.0
            assert p.mean_duration(gb(4)) <= 900.0

    def test_sample_duration_positive_and_noisy(self):
        rng = np.random.default_rng(0)
        p = get_profile("hadoop.bayes")
        samples = np.array([p.sample_duration(gb(1), rng) for _ in range(200)])
        assert np.all(samples > 0)
        assert samples.std() > 0

    def test_sample_duration_mean_preserved(self):
        rng = np.random.default_rng(1)
        p = get_profile("hadoop.wordcount")
        samples = np.array([p.sample_duration(gb(1), rng) for _ in range(5000)])
        assert samples.mean() == pytest.approx(p.mean_duration(gb(1)), rel=0.05)

    def test_zero_sigma_is_deterministic(self):
        from dataclasses import replace

        rng = np.random.default_rng(2)
        p = replace(get_profile("hadoop.bayes"), duration_sigma=0.0)
        assert p.sample_duration(gb(1), rng) == p.mean_duration(gb(1))

    def test_get_profile_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_profile("flink.sort")
