"""Tests for the batch-job churn generator."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.errors import WorkloadError
from repro.simcore.engine import SimulationEngine
from repro.units import gb, mb
from repro.workloads.generator import BatchJobGenerator, GeneratorConfig
from repro.workloads.traces import SyntheticTraceConfig, generate_trace


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def cluster():
    return Cluster.homogeneous(3)


class TestGeneratorConfig:
    def test_defaults_valid(self):
        GeneratorConfig()

    def test_weights_normalised(self):
        cfg = GeneratorConfig(mix={"spark.sort": 2.0, "hadoop.bayes": 2.0})
        np.testing.assert_allclose(cfg.profile_weights(), [0.5, 0.5])

    def test_unknown_profile_rejected(self):
        with pytest.raises(WorkloadError):
            GeneratorConfig(mix={"nope": 1.0})

    def test_zero_rate_rejected(self):
        with pytest.raises(WorkloadError):
            GeneratorConfig(jobs_per_node_per_s=0.0)

    def test_mean_duration_positive(self):
        assert GeneratorConfig().mean_duration_s() > 0


class TestChurn:
    def test_jobs_arrive_and_depart(self, rng, cluster):
        engine = SimulationEngine()
        gen = BatchJobGenerator(
            GeneratorConfig(jobs_per_node_per_s=0.05, size_range_mb=(mb(10), gb(1))),
            rng,
        )
        gen.start(engine, cluster)
        engine.run_until(3_000.0)
        assert gen.arrived > 0
        assert gen.completed > 0
        # Conservation: everything arrived is running, done, or dropped.
        active = sum(len(v) for v in gen.active_jobs.values())
        assert gen.arrived == gen.completed + gen.dropped + active

    def test_active_jobs_respect_slot_cap(self, rng, cluster):
        engine = SimulationEngine()
        cfg = GeneratorConfig(jobs_per_node_per_s=1.0, max_batch_jobs_per_node=2)
        gen = BatchJobGenerator(cfg, rng)
        gen.start(engine, cluster)
        engine.run_until(200.0)
        for jobs in gen.active_jobs.values():
            assert len(jobs) <= 2
        assert gen.dropped > 0  # at that rate the cap must bind

    def test_active_jobs_impose_contention(self, rng, cluster):
        engine = SimulationEngine()
        gen = BatchJobGenerator(GeneratorConfig(jobs_per_node_per_s=0.5), rng)
        gen.start(engine, cluster)
        engine.run_until(120.0)
        total = sum(
            cluster.contention_on(node, None).core for node in cluster
        )
        assert total > 0.0

    def test_stop_halts_arrivals(self, rng, cluster):
        engine = SimulationEngine()
        gen = BatchJobGenerator(GeneratorConfig(jobs_per_node_per_s=0.5), rng)
        gen.start(engine, cluster)
        engine.run_until(60.0)
        arrived = gen.arrived
        gen.stop()
        engine.run_until(600.0)
        assert gen.arrived == arrived
        # All in-flight jobs eventually leave.
        assert sum(len(v) for v in gen.active_jobs.values()) == 0

    def test_deterministic_given_seed(self, cluster):
        def run(seed):
            engine = SimulationEngine()
            gen = BatchJobGenerator(
                GeneratorConfig(jobs_per_node_per_s=0.2),
                np.random.default_rng(seed),
            )
            gen.start(engine, Cluster.homogeneous(3))
            engine.run_until(500.0)
            return (gen.arrived, gen.completed, gen.dropped)

        assert run(11) == run(11)
        assert run(11) != run(12)


class TestStationarySnapshot:
    def test_snapshot_respects_cap(self, rng):
        cfg = GeneratorConfig(jobs_per_node_per_s=5.0, max_batch_jobs_per_node=3)
        gen = BatchJobGenerator(cfg, rng)
        for _ in range(50):
            assert len(gen.sample_stationary_jobs()) <= 3

    def test_snapshot_jobs_active_now(self, rng):
        gen = BatchJobGenerator(GeneratorConfig(jobs_per_node_per_s=2.0), rng)
        for job in gen.sample_stationary_jobs(at_time=100.0):
            assert job.active_at(100.0)

    def test_snapshot_mean_matches_mg_infinity(self, rng):
        cfg = GeneratorConfig(
            jobs_per_node_per_s=0.01, max_batch_jobs_per_node=100
        )
        gen = BatchJobGenerator(cfg, rng)
        counts = [len(gen.sample_stationary_jobs()) for _ in range(3000)]
        expected = cfg.jobs_per_node_per_s * cfg.mean_duration_s()
        assert np.mean(counts) == pytest.approx(expected, rel=0.25)


class TestReplay:
    def test_replay_runs_trace_jobs(self, rng, cluster):
        engine = SimulationEngine()
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_s=500.0, jobs_per_s=0.05, duration_mode="profile"
            ),
            rng,
        )
        gen = BatchJobGenerator(GeneratorConfig(), rng)
        gen.replay(engine, cluster, trace)
        engine.run()
        assert gen.arrived == len(trace)
        assert gen.completed + gen.dropped == len(trace)

    def test_replay_with_explicit_assignment(self, rng, cluster):
        engine = SimulationEngine()
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_s=100.0, jobs_per_s=0.1, duration_mode="profile"
            ),
            rng,
        )
        gen = BatchJobGenerator(GeneratorConfig(max_batch_jobs_per_node=100), rng)
        gen.replay(engine, cluster, trace, node_assignment=[0] * len(trace))
        engine.run_until(50.0)
        assert all(
            len(jobs) == 0
            for name, jobs in gen.active_jobs.items()
            if name != "node-0"
        )
