"""Property tests: streaming estimators vs exact NumPy computations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MonitoringError
from repro.monitoring.streaming import P2Quantile, StreamingMoments


class TestStreamingMoments:
    @given(
        xs=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy(self, xs):
        sm = StreamingMoments()
        sm.add_many(xs)
        assert sm.n == len(xs)
        assert sm.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-9)
        assert sm.variance == pytest.approx(np.var(xs), rel=1e-7, abs=1e-7)

    @given(
        a=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
        b=st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        left, right = StreamingMoments(), StreamingMoments()
        left.add_many(a)
        right.add_many(b)
        left.merge(right)
        both = a + b
        assert left.n == len(both)
        assert left.mean == pytest.approx(np.mean(both), rel=1e-9, abs=1e-9)
        assert left.variance == pytest.approx(np.var(both), rel=1e-7, abs=1e-7)

    def test_merge_with_empty(self):
        sm = StreamingMoments()
        sm.add_many([1.0, 2.0])
        sm.merge(StreamingMoments())
        assert sm.n == 2
        empty = StreamingMoments()
        empty.merge(sm)
        assert empty.mean == pytest.approx(1.5)

    def test_scv_matches_definition(self):
        sm = StreamingMoments()
        xs = [0.004, 0.006, 0.008, 0.012]
        sm.add_many(xs)
        assert sm.scv == pytest.approx(np.var(xs) / np.mean(xs) ** 2)

    def test_empty_access_rejected(self):
        sm = StreamingMoments()
        with pytest.raises(MonitoringError):
            sm.mean
        with pytest.raises(MonitoringError):
            sm.variance

    def test_nonfinite_rejected(self):
        with pytest.raises(MonitoringError):
            StreamingMoments().add(float("nan"))


class TestP2Quantile:
    def test_exact_for_first_five(self):
        est = P2Quantile(0.5)
        for x in [5.0, 1.0, 3.0]:
            est.add(x)
        assert est.estimate == 3.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize(
        "dist",
        ["exponential", "lognormal", "uniform"],
    )
    def test_converges_on_large_streams(self, q, dist):
        rng = np.random.default_rng(hash((q, dist)) % 2**32)
        n = 50_000
        if dist == "exponential":
            xs = rng.exponential(1.0, n)
        elif dist == "lognormal":
            xs = rng.lognormal(0.0, 1.0, n)
        else:
            xs = rng.uniform(0.0, 10.0, n)
        est = P2Quantile(q)
        est.add_many(xs)
        exact = np.quantile(xs, q)
        assert est.estimate == pytest.approx(exact, rel=0.08)

    def test_p99_of_latency_like_stream(self):
        # The actual use: p99 of M/G/1 sojourn times.
        from repro.simcore.lindley import sojourn_times

        rng = np.random.default_rng(42)
        n = 100_000
        arrivals = np.cumsum(rng.exponential(0.01, n))
        services = rng.exponential(0.007, n)
        lat = sojourn_times(arrivals, services)
        est = P2Quantile(0.99)
        est.add_many(lat)
        assert est.estimate == pytest.approx(np.quantile(lat, 0.99), rel=0.1)

    @given(
        xs=st.lists(
            st.floats(min_value=0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_within_observed_range(self, xs):
        est = P2Quantile(0.9)
        est.add_many(xs)
        assert min(xs) - 1e-9 <= est.estimate <= max(xs) + 1e-9

    def test_constant_stream(self):
        est = P2Quantile(0.99)
        est.add_many([7.0] * 100)
        assert est.estimate == pytest.approx(7.0)

    def test_counts(self):
        est = P2Quantile(0.9)
        est.add_many(range(1, 20))
        assert est.n == 19

    def test_invalid_quantile_rejected(self):
        with pytest.raises(MonitoringError):
            P2Quantile(0.0)
        with pytest.raises(MonitoringError):
            P2Quantile(1.0)

    def test_empty_estimate_rejected(self):
        with pytest.raises(MonitoringError):
            P2Quantile(0.9).estimate

    def test_nonfinite_rejected(self):
        with pytest.raises(MonitoringError):
            P2Quantile(0.9).add(float("inf"))


class TestRollingGauge:
    def _gauge(self, horizon=3):
        from repro.monitoring.streaming import RollingGauge

        return RollingGauge(horizon=horizon)

    def test_empty_gauge(self):
        g = self._gauge()
        assert g.windows == 0
        assert g.total_requests == 0
        assert g.last is None
        assert g.rolling() is None

    def test_last_and_rolling(self):
        g = self._gauge(horizon=3)
        g.observe_window(p99=0.030, mean=0.010, n=100)
        g.observe_window(p99=0.050, mean=0.020, n=300)
        assert g.last == {"p99": 0.050, "mean": 0.020, "n": 300.0}
        rolling = g.rolling()
        assert rolling["p99"] == 0.050
        # Request-weighted: (0.010*100 + 0.020*300) / 400.
        assert rolling["mean"] == pytest.approx(0.0175)
        assert rolling["windows"] == 2.0

    def test_horizon_rolls_off_but_counters_persist(self):
        g = self._gauge(horizon=2)
        g.observe_window(p99=9.0, mean=9.0, n=10)
        for _ in range(2):
            g.observe_window(p99=0.01, mean=0.01, n=10)
        # The spike rolled out of the horizon...
        assert g.rolling()["p99"] == 0.01
        assert g.rolling()["windows"] == 2.0
        # ...but cumulative counters still saw it.
        assert g.windows == 3
        assert g.total_requests == 30
        assert g.p99_tail_estimate > 0.0
        assert g.mean_of_window_means == pytest.approx((9.0 + 0.02) / 3)

    def test_validation(self):
        from repro.monitoring.streaming import RollingGauge

        with pytest.raises(MonitoringError):
            RollingGauge(horizon=0)
        g = self._gauge()
        with pytest.raises(MonitoringError):
            g.observe_window(p99=0.1, mean=0.1, n=0)
        with pytest.raises(MonitoringError):
            g.observe_window(p99=float("nan"), mean=0.1, n=5)
