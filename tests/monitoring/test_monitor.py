"""Tests for the online monitor, sample windows, and arrival estimator."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.cluster.resources import ResourceVector
from repro.errors import MonitoringError
from repro.monitoring.arrival import ArrivalRateEstimator
from repro.monitoring.monitor import MonitorConfig, OnlineMonitor
from repro.monitoring.samples import ContentionSample, SampleWindow
from repro.service.component import Component, ComponentClass
from repro.simcore.distributions import Exponential
from repro.simcore.engine import SimulationEngine
from repro.units import ms


class FakeJob:
    def __init__(self, name, **demand):
        self.name = name
        self.demand = ResourceVector(**demand)


def _component(name="c0"):
    return Component(
        name=name, cls=ComponentClass.SEARCHING, base_service=Exponential(ms(6))
    )


@pytest.fixture
def setup():
    cluster = Cluster.homogeneous(2)
    comp = _component()
    cluster.place(comp, "node-0")
    job = FakeJob("job", core=0.5, cache_mpki=10.0, disk_bw=80.0, net_bw=20.0)
    cluster.place(job, "node-0", MachineKind.BATCH)
    return cluster, comp


class TestSampleWindow:
    def test_mean_of_samples(self):
        w = SampleWindow()
        w.append(ContentionSample(0.0, ResourceVector(core=0.2)))
        w.append(ContentionSample(1.0, ResourceVector(core=0.4)))
        assert w.mean().core == pytest.approx(0.3)

    def test_cache_mean_uses_fresh_only(self):
        w = SampleWindow()
        w.append(ContentionSample(0.0, ResourceVector(cache_mpki=10.0), cache_valid=True))
        w.append(ContentionSample(1.0, ResourceVector(cache_mpki=99.0), cache_valid=False))
        assert w.mean().cache_mpki == pytest.approx(10.0)

    def test_out_of_order_rejected(self):
        w = SampleWindow()
        w.append(ContentionSample(5.0, ResourceVector.zero()))
        with pytest.raises(MonitoringError):
            w.append(ContentionSample(4.0, ResourceVector.zero()))

    def test_empty_window_errors(self):
        w = SampleWindow()
        with pytest.raises(MonitoringError):
            w.mean()
        with pytest.raises(MonitoringError):
            w.last()

    def test_clear(self):
        w = SampleWindow()
        w.append(ContentionSample(0.0, ResourceVector.zero()))
        w.clear()
        assert w.empty

    def test_last_fresh_cache(self):
        w = SampleWindow()
        assert w.last_fresh_cache() is None
        w.append(ContentionSample(0.0, ResourceVector(cache_mpki=7.0), cache_valid=True))
        w.append(ContentionSample(1.0, ResourceVector(cache_mpki=1.0), cache_valid=False))
        assert w.last_fresh_cache() == pytest.approx(7.0)


class TestMonitorConfig:
    def test_paper_cadences_default(self):
        cfg = MonitorConfig()
        assert cfg.system_period_s == 1.0  # §VI-A: once every second
        assert cfg.micro_period_s == 60.0  # once every minute

    def test_micro_faster_than_system_rejected(self):
        with pytest.raises(MonitoringError):
            MonitorConfig(system_period_s=10.0, micro_period_s=1.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(MonitoringError):
            MonitorConfig(core_noise=-0.1)


class TestOneShotObservation:
    def test_observe_near_truth(self, setup):
        cluster, comp = setup
        monitor = OnlineMonitor(
            MonitorConfig(), cluster, [comp], np.random.default_rng(0)
        )
        truth = cluster.contention_for(comp)
        obs = np.array(
            [monitor.observe(comp).vector.as_array() for _ in range(2000)]
        )
        np.testing.assert_allclose(obs.mean(axis=0), truth.as_array(), rtol=0.02)

    def test_observe_window_reduces_noise(self, setup):
        cluster, comp = setup
        rng = np.random.default_rng(1)
        monitor = OnlineMonitor(MonitorConfig(), cluster, [comp], rng)
        one_shot = np.array(
            [monitor.observe(comp).vector.core for _ in range(500)]
        )
        windowed = np.array(
            [monitor.observe_window(comp, duration_s=100.0).core for _ in range(500)]
        )
        assert windowed.std() < one_shot.std() / 3

    def test_observe_window_bad_duration(self, setup):
        cluster, comp = setup
        monitor = OnlineMonitor(
            MonitorConfig(), cluster, [comp], np.random.default_rng(0)
        )
        with pytest.raises(MonitoringError):
            monitor.observe_window(comp, duration_s=0.0)

    def test_zero_noise_exact(self, setup):
        cluster, comp = setup
        cfg = MonitorConfig(core_noise=0.0, bw_noise=0.0, cache_noise=0.0)
        monitor = OnlineMonitor(cfg, cluster, [comp], np.random.default_rng(0))
        truth = cluster.contention_for(comp)
        assert monitor.observe(comp).vector == truth

    def test_no_components_rejected(self, setup):
        cluster, _ = setup
        with pytest.raises(MonitoringError):
            OnlineMonitor(MonitorConfig(), cluster, [], np.random.default_rng(0))


class TestEventDrivenSampling:
    def test_cadence_counts(self, setup):
        cluster, comp = setup
        engine = SimulationEngine()
        monitor = OnlineMonitor(
            MonitorConfig(), cluster, [comp], np.random.default_rng(0)
        )
        monitor.attach(engine)
        engine.run_until(120.0)
        window = monitor.windows[comp.name]
        # 120 system samples + 2 micro samples.
        assert len(window) == 122

    def test_window_mean_tracks_truth(self, setup):
        cluster, comp = setup
        engine = SimulationEngine()
        monitor = OnlineMonitor(
            MonitorConfig(), cluster, [comp], np.random.default_rng(3)
        )
        monitor.attach(engine)
        engine.run_until(300.0)
        est = monitor.window_mean(comp)
        truth = cluster.contention_for(comp)
        np.testing.assert_allclose(
            est.as_array(), truth.as_array(), rtol=0.05
        )

    def test_cache_carried_between_micro_samples(self, setup):
        cluster, comp = setup
        engine = SimulationEngine()
        monitor = OnlineMonitor(
            MonitorConfig(), cluster, [comp], np.random.default_rng(4)
        )
        monitor.attach(engine)
        engine.run_until(61.0)
        window = monitor.windows[comp.name]
        fresh = [s for s in window._samples if s.cache_valid]
        assert len(fresh) == 1  # only the t=60 micro sample

    def test_detach_stops_sampling(self, setup):
        cluster, comp = setup
        engine = SimulationEngine()
        monitor = OnlineMonitor(
            MonitorConfig(), cluster, [comp], np.random.default_rng(0)
        )
        monitor.attach(engine)
        engine.run_until(10.0)
        monitor.detach()
        n = monitor.samples_taken
        engine.run_until(100.0)
        assert monitor.samples_taken == n

    def test_reset_windows(self, setup):
        cluster, comp = setup
        engine = SimulationEngine()
        monitor = OnlineMonitor(
            MonitorConfig(), cluster, [comp], np.random.default_rng(0)
        )
        monitor.attach(engine)
        engine.run_until(10.0)
        monitor.reset_windows()
        with pytest.raises(MonitoringError):
            monitor.window_mean(comp)


class TestArrivalRateEstimator:
    def test_single_window(self):
        est = ArrivalRateEstimator(window_s=10.0, smoothing=1.0)
        assert est.record_count(500) == pytest.approx(50.0)

    def test_smoothing(self):
        est = ArrivalRateEstimator(window_s=1.0, smoothing=0.5)
        est.record_count(100)
        out = est.record_count(200)
        assert out == pytest.approx(150.0)

    def test_poisson_observation_concentrates(self):
        rng = np.random.default_rng(5)
        est = ArrivalRateEstimator(window_s=10.0, smoothing=1.0)
        rates = [est.observe_poisson(100.0, rng) for _ in range(300)]
        assert np.mean(rates) == pytest.approx(100.0, rel=0.02)
        assert np.std(rates) == pytest.approx(np.sqrt(100.0 / 10.0), rel=0.3)

    def test_no_estimate_before_observation(self):
        est = ArrivalRateEstimator()
        assert not est.has_estimate
        with pytest.raises(MonitoringError):
            est.estimate

    def test_reset(self):
        est = ArrivalRateEstimator()
        est.record_count(10)
        est.reset()
        assert not est.has_estimate
        assert est.windows_observed == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_s": 0.0},
            {"smoothing": 0.0},
            {"smoothing": 1.5},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(MonitoringError):
            ArrivalRateEstimator(**kwargs)

    def test_negative_count_rejected(self):
        with pytest.raises(MonitoringError):
            ArrivalRateEstimator().record_count(-1)


class TestSnapshot:
    """The monitor's frozen window views (the control plane's
    phase-boundary handoff): observations recorded after a snapshot
    must never appear in it."""

    def _monitor(self, setup):
        cluster, comp = setup
        return (
            OnlineMonitor(
                MonitorConfig(), cluster, [comp], np.random.default_rng(0)
            ),
            comp,
        )

    def test_snapshot_covers_every_component(self, setup):
        monitor, comp = self._monitor(setup)
        snap = monitor.snapshot()
        assert set(snap) == {comp.name}
        assert snap[comp.name].empty

    def test_post_snapshot_observe_does_not_mutate_snapshot(self, setup):
        monitor, comp = self._monitor(setup)
        monitor._sample_all(0.0, fresh_cache=True)
        snap = monitor.snapshot()
        view = snap[comp.name]
        assert len(view) == 1
        frozen_last = view.last()
        frozen_mean = view.mean().as_array().copy()
        # The live window keeps accumulating...
        monitor._sample_all(1.0, fresh_cache=False)
        monitor._sample_all(2.0, fresh_cache=True)
        assert len(monitor.windows[comp.name]) == 3
        # ...but the taken snapshot is frozen in time.
        assert len(view) == 1
        assert view.last() is frozen_last
        np.testing.assert_array_equal(view.mean().as_array(), frozen_mean)

    def test_snapshot_survives_window_reset(self, setup):
        monitor, comp = self._monitor(setup)
        monitor._sample_all(0.0, fresh_cache=True)
        view = monitor.snapshot()[comp.name]
        monitor.reset_windows()
        assert monitor.windows[comp.name].empty
        assert len(view) == 1

    def test_frozen_view_rejects_mutation(self, setup):
        monitor, comp = self._monitor(setup)
        monitor._sample_all(0.0, fresh_cache=True)
        view = monitor.snapshot()[comp.name]
        with pytest.raises(AttributeError):
            view.samples = ()
        assert not hasattr(view, "append")

    def test_empty_frozen_view_fails_loudly(self):
        from repro.monitoring.samples import FrozenSampleWindow

        view = FrozenSampleWindow(samples=())
        assert view.empty and len(view) == 0
        with pytest.raises(MonitoringError):
            view.mean()
        with pytest.raises(MonitoringError):
            view.last()
