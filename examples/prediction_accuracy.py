#!/usr/bin/env python
"""The Fig. 5 experiment: how well Eq. 1 predicts service times.

Profiles a searching component against each of the six BigDataBench
workloads across the paper's input-size grids, trains the per-resource
regression combination, and reports held-out prediction errors in the
paper's format — then shows what the *weights* learned, i.e. which
shared resource each co-runner actually stresses.
"""

import numpy as np

from repro.experiments.fig5 import Fig5Config, run_fig5
from repro.experiments.report import render_table
from repro.interference import default_interference_model
from repro.model.training import TrainingSet, train_combined_model
from repro.service.component import Component, ComponentClass
from repro.sim.profiling import ProfilingConfig, observe_condition
from repro.simcore.distributions import LogNormal
from repro.units import gb, mb, ms
from repro.workloads.batch import BatchJobSpec


def learned_weights_table() -> str:
    """Show Eq. 1's relevance weights in the two training regimes.

    Within one workload's campaign all four contention scalars co-move
    with the job's input size, so every single-resource model is near
    perfectly correlated with the target and the weights equalise —
    which is exactly why per-type models predict so well.  Pooling
    heterogeneous workloads breaks the co-movement and the weights
    spread to reflect which resources actually carry signal.
    """
    rng = np.random.default_rng(5)
    interference = default_interference_model(0.02)
    cfg = ProfilingConfig(window_s=60.0, repetitions=2)
    rows = []

    def weights_for(tag, conditions):
        rep = Component(
            name=f"rep-{tag}",
            cls=ComponentClass.SEARCHING,
            base_service=LogNormal(ms(3.5), 0.5),
        )
        training = TrainingSet()
        for i, specs in enumerate(conditions):
            for u, x_bar, _ in observe_condition(
                rep, specs, interference, cfg, rng, condition_tag=f"{tag}-{i}"
            ):
                training.add(u, x_bar)
        model, _ = train_combined_model(training)
        return model.normalised_weights()

    sizes = np.geomspace(mb(100), gb(4), 12)
    for workload in ("hadoop.bayes", "spark.sort"):
        w = weights_for(
            workload,
            [[BatchJobSpec.of(workload, float(s))] for s in sizes],
        )
        rows.append([f"single type: {workload}"] + [f"{v:.2f}" for v in w.values()])
    from repro.sim.profiling import mixed_conditions

    w = weights_for("pooled", mixed_conditions(60, rng))
    rows.append(["pooled multi-job mixes"] + [f"{v:.2f}" for v in w.values()])
    return render_table(
        ["training regime", "w_core", "w_cache", "w_diskBW", "w_netBW"],
        rows,
        title="Eq. 1 relevance weights by training regime",
    )


def main() -> None:
    print("Running the Fig. 5 prediction-accuracy campaign ...\n")
    result = run_fig5(Fig5Config(seed=0))
    print(result.render())
    print()
    print(learned_weights_table())
    print(
        "\nWithin a single workload type all four contention scalars "
        "co-move with input size, so Eq. 1 weights them equally; over "
        "heterogeneous mixes the weights spread toward the resources "
        "that actually explain the slowdown."
    )


if __name__ == "__main__":
    main()
