#!/usr/bin/env python
"""Seed-level statistics and provenance over a cached sweep.

Runs a small policies × rates × **seeds** grid through the parallel
sweep subsystem, then shows the three things PR 2 added on top:

1. the shared seed-level reduction (``repro.sim.aggregate``): mean ±
   Student-t CI and a nearest-rank bootstrap interval per metric, per
   (policy, rate) cell — the same table ``python -m repro aggregate
   --cache-dir ...`` prints offline from the cache alone;
2. the human-readable ``manifest.json`` provenance: which knobs deviate
   from the defaults, which cache key belongs to which grid cell, and
   when the sweep started/finished;
3. cache hygiene: ``SweepCache.diff`` to see what changed between two
   runs' grids, and ``SweepCache.gc`` to drop point files orphaned by
   an abandoned configuration.

Everything is deterministic: rerunning this script reproduces every
number, including the bootstrap interval bounds.
"""

import dataclasses
import json
import tempfile
from pathlib import Path

from repro.baselines.policies import BasicPolicy, REDPolicy
from repro.service.nutch import NutchConfig
from repro.sim.aggregate import AggregateConfig, SweepSummary
from repro.sim.runner import RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepCache, SweepSpec


def build_spec() -> SweepSpec:
    base = RunnerConfig(
        n_nodes=10,
        arrival_rate=50.0,  # placeholder; each point overrides it
        interval_s=15.0,
        n_intervals=4,
        warmup_intervals=1,
        seed=0,  # placeholder; each point overrides it
        nutch=NutchConfig(n_search_groups=6, replicas_per_group=3),
        n_profiling_conditions=12,
    )
    return SweepSpec(
        base=base,
        policies=(BasicPolicy(), REDPolicy(replicas=3)),
        arrival_rates=(40.0, 120.0),
        seeds=(0, 1, 2, 3),
    )


def main() -> None:
    spec = build_spec()
    with tempfile.TemporaryDirectory(prefix="pcs-aggregate-") as tmp:
        cache = SweepCache(Path(tmp) / "sweep-cache")
        print(
            f"running {spec.n_points} points "
            f"({len(spec.policies)} policies x {len(spec.arrival_rates)} "
            f"rates x {len(spec.seeds)} seeds)...\n"
        )
        result = ParallelSweepRunner(spec, workers=2, cache=cache).run()

        # 1. the shared seed-level reduction
        summary = result.summary(AggregateConfig(confidence=0.95))
        print(summary.render_table())
        cell = summary.get("Basic", 120.0)["overall_latency.mean"]
        print(
            f"\nBasic @ 120 req/s overall mean across {cell.n} seeds: "
            f"{cell.mean * 1e3:.2f} ms "
            f"(t-CI [{cell.t_lo * 1e3:.2f}, {cell.t_hi * 1e3:.2f}] ms, "
            f"bootstrap [{cell.boot_lo * 1e3:.2f}, {cell.boot_hi * 1e3:.2f}] ms)"
        )

        # The same summary, rebuilt offline from the cache directory.
        offline = SweepSummary.from_cache(cache)
        assert offline.to_dict() == summary.to_dict()
        print("\noffline aggregation from the cache is bit-identical ✓")

        # 2. provenance: the manifest is human-readable JSON
        manifest = cache.manifest()
        print(
            f"\nmanifest: created {manifest['created']}, "
            f"completed {manifest['completed']}, "
            f"{len(manifest['points'])} points"
        )
        print("knobs deviating from the default RunnerConfig:")
        print(json.dumps(manifest["base_config_diff"], indent=2))

        # 3. cross-run diff + garbage collection
        bigger = dataclasses.replace(
            spec, base=dataclasses.replace(spec.base, n_nodes=16)
        )
        other = SweepCache(Path(tmp) / "other-cache")
        other.begin_manifest(bigger)
        print("\ndiff vs a 16-node variant of the same grid:")
        print(f"  {cache.diff(other)}")

        orphan = cache.path_for("0" * 32)
        orphan.write_text("{}")  # a key no current grid references
        removed = cache.gc()
        print(f"gc removed {len(removed)} orphaned file(s): "
              f"{[p.name for p in removed]}")


if __name__ == "__main__":
    main()
