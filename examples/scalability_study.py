#!/usr/bin/env python
"""The Fig. 7 experiment: scheduling cost as the service grows.

Times matrix construction (analysis) and the greedy loop (search) from
40x8 to 640x128, plus the §VI-D hierarchical strategy beyond that, and
relates the cost to the 600 s scheduling interval as the paper does.
"""

from repro.experiments.fig7 import Fig7Config, run_fig7


def main() -> None:
    print("Timing one scheduling interval per (components, nodes) point ...\n")
    result = run_fig7(Fig7Config())
    print(result.render())
    flat = [p for p in result.points if not p.hierarchical]
    growth = flat[-1].total_time_s / flat[0].total_time_s
    size_growth = (flat[-1].m * flat[-1].m * flat[-1].k) / (
        flat[0].m * flat[0].m * flat[0].k
    )
    print(
        f"\ntime grew {growth:.0f}x while m^2*k grew {size_growth:.0f}x — "
        "the vectorised implementation stays well inside the paper's "
        "O(m^2 k) bound."
    )


if __name__ == "__main__":
    main()
