#!/usr/bin/env python
"""Anatomy of a straggler — the paper's §I motivating example.

"Suppose that at stage 2, the request processing is parallelized into
100 components, in which 99 components can respond in 10 ms but only
one component gets a slow response of 1 second; the overall service
performance is deteriorated by this straggling component."

This example builds that situation mechanically: a healthy cluster,
one node crushed by co-located batch jobs, and the fine-grained
event-driven simulator showing how the single interfered component
drags the whole service's latency distribution — then removes the
interference and shows the service recover.
"""

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.cluster.node import NodeCapacity
from repro.experiments.report import render_table
from repro.interference import default_interference_model
from repro.service.nutch import NutchConfig, build_nutch_service
from repro.sim.des_service import DESServiceSimulator
from repro.sim.metrics import percentile
from repro.units import gb
from repro.workloads.batch import BatchJob, BatchJobSpec


def latency_table(title, outcome):
    lat = outcome.request_latencies * 1e3
    comp = outcome.pooled_component_latencies() * 1e3
    return render_table(
        ["metric", "p50", "p95", "p99", "max"],
        [
            ["overall (ms)"] + [f"{percentile(lat, q):.1f}" for q in (50, 95, 99, 100)],
            ["component (ms)"] + [f"{percentile(comp, q):.1f}" for q in (50, 95, 99, 100)],
        ],
        title=title,
    )


def run(crush_one_node: bool) -> None:
    service = build_nutch_service(
        NutchConfig(n_search_groups=10, replicas_per_group=2)
    )
    cluster = Cluster.homogeneous(10, NodeCapacity(machine_slots=16))
    service.deploy(cluster, "round_robin")
    interference = default_interference_model(noise_sigma=0.0)

    if crush_one_node:
        # Pile three large I/O-heavy batch jobs onto node-3.
        for i in range(3):
            job = BatchJob(
                spec=BatchJobSpec.of("spark.sort", gb(8)),
                arrival_time=0.0,
                duration=1e9,
                name=f"crusher-{i}",
            )
            cluster.place(job, "node-3", MachineKind.BATCH)

    # True service distributions under the current contention.
    dists = {
        c.name: interference.service_distribution(c, cluster.contention_for(c))
        for c in service.components
    }
    victims = [
        c.name
        for c in service.components
        if cluster.node_of(c).name == "node-3"
    ]
    sim = DESServiceSimulator(service.topology, dists, np.random.default_rng(0))
    outcome = sim.run(arrival_rate=40.0, duration_s=60.0)
    label = "one crushed node" if crush_one_node else "healthy cluster"
    print(latency_table(f"{label} ({len(victims)} components on node-3)", outcome))
    if crush_one_node:
        slow = max(dists[name].mean for name in victims)
        fast = min(d.mean for d in dists.values())
        print(
            f"straggling components' mean service time: {slow * 1e3:.1f} ms "
            f"vs {fast * 1e3:.1f} ms for the fastest component\n"
        )
    else:
        print()


def main() -> None:
    run(crush_one_node=False)
    run(crush_one_node=True)
    print(
        "The crushed node's components dominate the overall tail — the\n"
        "component latency variability PCS exists to remove (see\n"
        "examples/policy_comparison.py for the scheduler in action)."
    )


if __name__ == "__main__":
    main()
