#!/usr/bin/env python
"""Using the library on your own service and workloads.

The paper's machinery is not Nutch-specific: any staged fan-out/fan-in
service plus any batch-workload profile plugs into the same predictor
and scheduler.  This example builds

- a custom batch workload ("etl.compaction" — a disk-hammering
  compaction job) with its own demand curves, and
- a two-stage recommendation service (feature lookup -> ranking),

then runs one PCS scheduling interval against ground truth and prints
the migrations the scheduler chose.
"""

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.cluster.node import NodeCapacity
from repro.cluster.resources import ResourceKind, ResourceVector
from repro.experiments.report import render_table
from repro.interference import default_interference_model
from repro.model.matrix import MatrixInputs
from repro.model.predictor import OraclePredictor
from repro.scheduler.pcs import PCSScheduler, SchedulerConfig
from repro.scheduler.threshold import AdaptiveThreshold
from repro.service.component import Component, ComponentClass
from repro.service.service import OnlineService
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.simcore.distributions import LogNormal
from repro.units import gb, ms
from repro.workloads.batch import BatchJob, BatchJobSpec
from repro.workloads.profiles import (
    Framework,
    SaturatingCurve,
    Semantics,
    WorkloadProfile,
)

# ----------------------------------------------------------------------
# 1. A custom batch workload: nightly segment compaction.
# ----------------------------------------------------------------------
compaction = WorkloadProfile(
    name="etl.compaction",
    framework=Framework.SPARK,
    semantics=Semantics.IO_INTENSIVE,
    curves={
        ResourceKind.CORE: SaturatingCurve(0.25, 800.0),
        ResourceKind.CACHE: SaturatingCurve(5.0, 900.0),
        ResourceKind.DISK_BW: SaturatingCurve(220.0, 700.0),
        ResourceKind.NET_BW: SaturatingCurve(20.0, 1500.0),
    },
    base_duration_s=15.0,
    duration_per_mb_s=0.02,
)


# ----------------------------------------------------------------------
# 2. A custom two-stage service: feature lookup -> ranking.
# ----------------------------------------------------------------------
def build_recommender() -> OnlineService:
    def comp(name, mean, scv):
        return Component(
            name=name,
            cls=ComponentClass.GENERIC,
            base_service=LogNormal(mean, scv),
            demand=ResourceVector(core=0.05, cache_mpki=1.2, disk_bw=5.0, net_bw=2.0),
        )

    lookup = Stage(
        "feature-lookup",
        [
            ReplicaGroup(
                f"shard-{g}", [comp(f"lookup-{g}-{r}", ms(2.5), 0.5) for r in range(2)]
            )
            for g in range(6)
        ],
    )
    ranking = Stage(
        "ranking",
        [ReplicaGroup("rank", [comp(f"rank-{r}", ms(4.0), 0.4) for r in range(4)])],
    )
    return OnlineService("recommender", ServiceTopology([lookup, ranking]))


def main() -> None:
    service = build_recommender()
    cluster = Cluster.homogeneous(8, NodeCapacity(machine_slots=12))
    service.deploy(cluster, "round_robin")

    # Crush two nodes with the custom compaction job.
    for node_name in ("node-1", "node-5"):
        job = BatchJob(
            spec=BatchJobSpec(compaction, gb(6)),
            arrival_time=0.0,
            duration=1e9,
            name=f"compaction@{node_name}",
        )
        cluster.place(job, node_name, MachineKind.BATCH)

    interference = default_interference_model(noise_sigma=0.0)
    components = service.components
    oracle = OraclePredictor(
        interference, {ComponentClass.GENERIC: components[0]}
    )

    group_ids, next_id = [], 0
    for stage in service.topology.stages:
        for group in stage.groups:
            group_ids.extend([next_id] * group.n_replicas)
            next_id += 1
    inputs = MatrixInputs(
        stage_of=np.array([c.stage_index for c in components]),
        classes=[c.cls for c in components],
        demands=np.stack([c.demand.as_array() for c in components]),
        assignment=np.array(cluster.placement_indices(components)),
        node_totals=np.stack([n.total_demand().as_array() for n in cluster.nodes]),
        arrival_rates=np.full(len(components), 30.0),
        node_limits=np.full(len(cluster), 8),
        group_of=np.array(group_ids),
    )
    scheduler = PCSScheduler(
        oracle,
        SchedulerConfig(threshold=AdaptiveThreshold(fraction=0.03, min_epsilon_s=ms(0.1))),
    )
    outcome = scheduler.schedule(inputs)

    rows = [
        [
            components[m.component_index].name,
            f"node-{m.origin}",
            f"node-{m.destination}",
            f"{m.predicted_gain_s * 1e3:.2f}",
        ]
        for m in outcome.migrations
    ]
    print(render_table(
        ["component", "from", "to", "predicted gain (ms)"],
        rows,
        title=f"PCS on '{service.name}' — {outcome.n_migrations} migrations",
    ))
    print(
        f"\npredicted overall latency: "
        f"{outcome.initial_overall_s * 1e3:.2f} ms -> "
        f"{outcome.final_overall_s * 1e3:.2f} ms "
        f"(analysis {outcome.analysis_time_s * 1e3:.1f} ms, "
        f"search {outcome.search_time_s * 1e3:.1f} ms)"
    )
    moved_off = {f"node-{m.origin}" for m in outcome.migrations}
    print(f"components were moved off: {sorted(moved_off)} (the crushed nodes)")


if __name__ == "__main__":
    main()
