#!/usr/bin/env python
"""The Fig. 6 experiment at explorable scale.

Sweeps arrival rates over all six compared techniques (Basic, RED-3,
RED-5, RI-90, RI-99, PCS) on a reduced cluster and prints the paper's
two metrics per cell, the log-scale bar 'panels', and both headline
aggregations.

Usage::

    python examples/policy_comparison.py [rate1 rate2 ...]
"""

import sys

from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.service.nutch import NutchConfig


def main() -> None:
    rates = tuple(float(a) for a in sys.argv[1:]) or (20.0, 100.0, 300.0)
    cfg = Fig6Config(
        arrival_rates=rates,
        n_nodes=16,
        n_intervals=6,
        warmup_intervals=1,
        seed=7,
        nutch=NutchConfig(n_search_groups=10, replicas_per_group=4),
    )
    print(
        f"Sweeping {len(rates)} arrival rates x 6 policies on "
        f"{cfg.n_nodes} nodes ({cfg.nutch.n_searching} searching "
        "components) ...\n"
    )
    result = run_fig6(cfg)
    print(result.render())
    print(f"\n(wall time: {result.wall_time_s:.1f} s)")


if __name__ == "__main__":
    main()
