#!/usr/bin/env python
"""Quickstart: Basic vs PCS on a small simulated cluster.

Builds the paper's Nutch-like three-stage search service, co-locates it
with churning batch jobs on a 12-node cluster, and compares static
placement (Basic) against the predictive component-level scheduler
(PCS) at one arrival rate.  Runs in well under a minute.

Usage::

    python examples/quickstart.py [arrival_rate]
"""

import sys

from repro import quickstart_comparison


def main() -> None:
    arrival_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    print(f"Running Basic vs PCS at {arrival_rate:g} req/s ...\n")
    result = quickstart_comparison(arrival_rate=arrival_rate, seed=1)
    print(result.render())
    cell = result.results[arrival_rate]
    basic, pcs = cell["Basic"], cell["PCS"]
    tail_cut = 100 * (1 - pcs.component_p99_s / basic.component_p99_s)
    mean_cut = 100 * (1 - pcs.overall_mean_s / basic.overall_mean_s)
    print(
        f"\nPCS migrated {pcs.n_migrations} components and cut the "
        f"component p99 by {tail_cut:.0f}% and the mean overall latency "
        f"by {mean_cut:.0f}% versus static placement."
    )


if __name__ == "__main__":
    main()
