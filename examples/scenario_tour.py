"""Tour of the scenario registry and the routing-kernel plug-in seam.

Runs one small Basic-vs-Hedge-vs-PCS comparison on every built-in
scenario, then registers a tiny custom scenario and runs it through the
same sweep machinery — nothing in the simulator or runner knows about
any specific topology.

Run:  PYTHONPATH=src python examples/scenario_tour.py
"""

from repro.baselines.policies import BasicPolicy, HedgedPolicy
from repro.experiments.fig6 import paper_pcs_policy
from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    register_scenario,
)
from repro.service.nutch import NutchConfig
from repro.service.component import Component, ComponentClass
from repro.service.service import OnlineService
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.sim.sweep import ParallelSweepRunner, SweepSpec
from repro.simcore.distributions import Exponential
from repro.units import ms


def run_scenario(spec: ScenarioSpec) -> None:
    base = spec.runner_config(
        n_nodes=8,
        arrival_rate=40.0,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=0,
        scale=0.5,  # shrink the non-Nutch shapes for a laptop run
        nutch=NutchConfig(  # ... and the Nutch shape explicitly
            n_search_groups=6, replicas_per_group=3,
            n_segmenters=2, n_aggregators=2,
        ),
        n_profiling_conditions=12,
    )
    sweep = SweepSpec(
        base=base,
        policies=(BasicPolicy(), HedgedPolicy(hedge_delay_s=0.008),
                  paper_pcs_policy()),
        arrival_rates=(40.0,),
        seeds=(0,),
    )
    print(f"\n=== {spec.describe(base)}")
    for point, result in ParallelSweepRunner(sweep).run().results.items():
        print(f"  {result.render()}")


def build_echo(config) -> OnlineService:
    """A deliberately boring custom scenario: one two-replica echo tier."""
    stage = Stage(
        "echo",
        [
            ReplicaGroup(
                "echo-g0",
                [
                    Component(
                        name=f"echo-r{r}",
                        cls=ComponentClass.GENERIC,
                        base_service=Exponential(ms(2.0)),
                    )
                    for r in range(2)
                ],
            )
        ],
    )
    return OnlineService("echo-tier", ServiceTopology([stage]))


def main() -> None:
    for spec in all_scenarios():
        run_scenario(spec)
    custom = register_scenario(
        ScenarioSpec(
            name="echo-tier",
            description="single-stage echo service (custom-scenario demo)",
            build=build_echo,
            runner_defaults={"n_nodes": 4},
        )
    )
    run_scenario(custom)


if __name__ == "__main__":
    main()
