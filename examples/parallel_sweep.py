#!/usr/bin/env python
"""A Fig. 6-style sweep through the parallel sweep subsystem.

Builds a policies × arrival-rates × seeds grid, fans it out over as
many workers as the machine offers, memoizes every completed point in
an on-disk cache, then reruns the sweep to show the resume path (every
point a cache hit, the whole "sweep" over in milliseconds).

Results are bit-identical whatever the worker count — and whatever the
*execution backend*: every point seeds its own RngRegistry from its
grid coordinates, so parallelism is free of heisen-numbers.  Kill the
script mid-sweep and rerun it — completed points are not recomputed.

The script also demonstrates backend choice (the CLI equivalent is
``--backend thread`` / ``--chunk-size``): the sweep's leftover points
after an interruption form a *small* pending set, exactly where the
thread backend shines — in-process workers skip the per-spawn
interpreter + numpy import and share one trained-predictor memo, so a
handful of points finishes before a spawn pool would have finished
importing numpy.
"""

import os
import tempfile
import time

from repro.baselines.policies import BasicPolicy, REDPolicy
from repro.experiments.fig6 import paper_pcs_policy
from repro.service.nutch import NutchConfig
from repro.sim.runner import RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepSpec
from repro.workloads.generator import GeneratorConfig


def build_spec() -> SweepSpec:
    base = RunnerConfig(
        n_nodes=12,
        arrival_rate=50.0,  # placeholder; each point overrides it
        interval_s=20.0,
        n_intervals=5,
        warmup_intervals=1,
        seed=0,  # placeholder; each point overrides it
        nutch=NutchConfig(n_search_groups=8, replicas_per_group=3),
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.015, max_batch_jobs_per_node=3
        ),
    )
    return SweepSpec(
        base=base,
        policies=(BasicPolicy(), REDPolicy(replicas=3), paper_pcs_policy()),
        arrival_rates=(30.0, 90.0, 180.0),
        seeds=(0, 1),
    )


def main() -> None:
    spec = build_spec()
    try:
        workers = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        workers = os.cpu_count() or 1
    print(
        f"{spec.n_points}-point grid "
        f"({len(spec.policies)} policies x {len(spec.arrival_rates)} rates "
        f"x {len(spec.seeds)} seeds), {workers} worker(s)\n"
    )
    with tempfile.TemporaryDirectory(prefix="pcs-sweep-cache-") as cache_dir:
        sweep = ParallelSweepRunner(
            spec,
            workers=workers,
            cache=cache_dir,
            progress=lambda p: print(p.render()),
        )
        first = sweep.run()
        print(f"\ncold sweep: {first.wall_time_s:.1f} s\n")

        resumed = ParallelSweepRunner(spec, workers=workers, cache=cache_dir).run()
        print(
            f"resumed sweep: {resumed.wall_time_s:.3f} s "
            f"({resumed.cache_hits}/{spec.n_points} points from cache)\n"
        )

        # Backend choice (CLI: --backend thread).  Simulate an
        # interruption that lost a few points: the small pending set is
        # exactly where in-process threads beat spawn workers, which
        # would each pay an interpreter + numpy import to recompute
        # three cells.
        from repro.sim.sweep import SweepCache, point_cache_key

        cache = SweepCache(cache_dir)
        for point in spec.points()[:3]:
            cache.path_for(
                point_cache_key(spec.runner_config(point), point.policy)
            ).unlink()
        t0 = time.perf_counter()
        threaded = ParallelSweepRunner(
            spec, workers=workers, cache=cache, backend="thread"
        ).run()
        print(
            f"thread-backend repair of 3 lost points: "
            f"{time.perf_counter() - t0:.2f} s "
            f"({threaded.cache_hits}/{spec.n_points} from cache); "
            "identical numbers, no spawn import cost\n"
        )
        for point in spec.points()[:3]:
            assert (
                threaded.results[point].metrics_dict()
                == first.results[point].metrics_dict()
            )

    # The grid slices back into the familiar Fig. 6 presentation.
    for seed in spec.seeds:
        per_rate = first.by_rate(seed=seed)
        for rate in spec.arrival_rates:
            pcs = per_rate[rate]["PCS"]
            basic = per_rate[rate]["Basic"]
            print(
                f"seed {seed} @ {rate:5.0f} req/s: PCS p99 "
                f"{pcs.component_p99_s * 1e3:6.1f} ms vs Basic "
                f"{basic.component_p99_s * 1e3:6.1f} ms"
            )


if __name__ == "__main__":
    main()
